// AnalyticalEngine vs the cycle engines, at the NoC-library level.
//
// The analytical backend claims bit-exactness on congestion-free
// schedules: the same link table, per-link flit/BT counters, drain cycle,
// delivery counts and latency/hops accumulators as a Network stepped
// through the identical schedule. These suites drive both through shared
// deterministic schedules (replicating the campaign runner's
// inject/advance_idle loop on the Network side) and compare everything,
// across mesh shapes, routing algorithms, channel latencies, packet
// lengths and self-traffic. They also pin the negative paths: contention
// detection, unsupported configs, and the inject() validation mirroring.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "noc/analytical_engine.h"
#include "noc/network.h"

namespace nocbt::noc {
namespace {

struct ScheduledPacket {
  std::uint64_t cycle = 0;
  std::int32_t src = 0;
  std::int32_t dst = 0;
  std::vector<BitVec> payloads;
};

/// Deterministic pseudo-random payloads so BT totals are nontrivial.
std::vector<BitVec> make_payloads(unsigned bits, std::size_t flits,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BitVec> out;
  out.reserve(flits);
  for (std::size_t f = 0; f < flits; ++f) {
    BitVec v(bits);
    for (unsigned b = 0; b < bits; ++b)
      if (rng.uniform_int(0, 1)) v.set_bit(b, true);
    out.push_back(std::move(v));
  }
  return out;
}

/// Run `schedule` (sorted by cycle) through a cycle-engine Network with
/// the campaign runner's loop shape: advance_idle over gaps, inject at the
/// request cycle, step until drained.
void run_network(Network& net, const std::vector<ScheduledPacket>& schedule) {
  std::size_t next = 0;
  while (next < schedule.size() || !net.idle()) {
    if (next < schedule.size() && schedule[next].cycle > net.cycle() &&
        net.idle())
      net.advance_idle(schedule[next].cycle - net.cycle());
    while (next < schedule.size() && schedule[next].cycle <= net.cycle()) {
      net.inject(schedule[next].src, schedule[next].dst,
                 schedule[next].payloads);
      ++next;
    }
    net.step();
    ASSERT_LT(net.cycle(), 100'000u) << "cycle engine failed to drain";
  }
}

void expect_same_results(const AnalyticalEngine& ana, const Network& net) {
  // Link tables must be interchangeable: same count, same ids, same info.
  ASSERT_EQ(ana.bt().link_count(), net.bt().link_count());
  EXPECT_EQ(ana.bt().snapshot(), net.bt().snapshot());  // flits + BT per link
  EXPECT_EQ(ana.bt().total(), net.bt().total());
  EXPECT_EQ(ana.bt().total_all_links(), net.bt().total_all_links());
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(ana.bt().by_kind(static_cast<LinkKind>(k)),
              net.bt().by_kind(static_cast<LinkKind>(k)));
    EXPECT_EQ(ana.bt().flits_by_kind(static_cast<LinkKind>(k)),
              net.bt().flits_by_kind(static_cast<LinkKind>(k)));
  }
  EXPECT_EQ(ana.cycle(), net.cycle());
  EXPECT_EQ(ana.stats().cycles, net.stats().cycles);
  EXPECT_EQ(ana.stats().packets_injected, net.stats().packets_injected);
  EXPECT_EQ(ana.stats().packets_delivered, net.stats().packets_delivered);
  EXPECT_EQ(ana.stats().flits_injected, net.stats().flits_injected);
  EXPECT_EQ(ana.stats().flits_delivered, net.stats().flits_delivered);
  // Welford accumulators: identical add order means identical doubles.
  EXPECT_EQ(ana.stats().packet_latency.mean(),
            net.stats().packet_latency.mean());
  EXPECT_EQ(ana.stats().packet_latency.count(),
            net.stats().packet_latency.count());
  EXPECT_EQ(ana.stats().packet_hops.mean(), net.stats().packet_hops.mean());
  EXPECT_EQ(ana.stats().sim.engine, SimEngine::kAnalytical);
}

/// Feed the same schedule through both backends and compare everything.
/// Returns the analytical congestion-free verdict (callers assert it).
bool run_differential(const NocConfig& cfg,
                      const std::vector<ScheduledPacket>& schedule,
                      unsigned threads = 1) {
  AnalyticalEngine ana(cfg);
  for (const ScheduledPacket& p : schedule)
    ana.inject(p.cycle, p.src, p.dst, p.payloads);
  const bool free = ana.run(threads);

  NocConfig cycle_cfg = cfg;
  cycle_cfg.engine = SimEngine::kActiveSet;
  Network net(cycle_cfg);
  for (std::int32_t n = 0; n < net.shape().node_count(); ++n)
    net.set_sink(n, nullptr);
  run_network(net, schedule);

  if (free) expect_same_results(ana, net);
  return free;
}

NocConfig small_cfg(std::int32_t rows, std::int32_t cols) {
  NocConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.flit_payload_bits = 96;
  cfg.bt_scope.count_injection = true;  // compare every link class
  return cfg;
}

TEST(AnalyticalEngine, LinkTableMatchesNetworkRegistrationOrder) {
  for (auto [rows, cols] : {std::pair{1, 2}, {4, 1}, {3, 5}, {4, 4}}) {
    const NocConfig cfg = small_cfg(rows, cols);
    AnalyticalEngine ana(cfg);
    Network net(cfg);
    ASSERT_EQ(ana.bt().link_count(), net.bt().link_count())
        << rows << "x" << cols;
    for (std::size_t id = 0; id < net.bt().link_count(); ++id)
      EXPECT_EQ(ana.bt().link_info(static_cast<std::int32_t>(id)),
                net.bt().link_info(static_cast<std::int32_t>(id)))
          << rows << "x" << cols << " link " << id;
  }
}

TEST(AnalyticalEngine, SinglePacketEveryPair4x3) {
  // Every (src, dst) pair, one packet each run: pins the zero-load
  // latency/drain formulas for every route length including dst == src.
  NocConfig cfg = small_cfg(4, 3);
  cfg.allow_self_traffic = true;
  for (std::int32_t src = 0; src < 12; ++src)
    for (std::int32_t dst = 0; dst < 12; ++dst) {
      const std::vector<ScheduledPacket> schedule{
          {7, src, dst,
           make_payloads(cfg.flit_payload_bits, 3,
                         static_cast<std::uint64_t>(src * 100 + dst))}};
      EXPECT_TRUE(run_differential(cfg, schedule))
          << src << " -> " << dst;
    }
}

TEST(AnalyticalEngine, SingleFlitAndLongPackets) {
  const NocConfig cfg = small_cfg(4, 4);
  std::vector<ScheduledPacket> schedule;
  schedule.push_back({0, 0, 15, make_payloads(cfg.flit_payload_bits, 1, 1)});
  schedule.push_back({40, 5, 6, make_payloads(cfg.flit_payload_bits, 17, 2)});
  schedule.push_back({120, 12, 3, make_payloads(cfg.flit_payload_bits, 9, 3)});
  EXPECT_TRUE(run_differential(cfg, schedule));
}

TEST(AnalyticalEngine, DisjointRoutesSameCycle) {
  // Simultaneous packets on non-intersecting routes stay congestion-free.
  const NocConfig cfg = small_cfg(4, 4);
  std::vector<ScheduledPacket> schedule;
  schedule.push_back({3, 0, 3, make_payloads(cfg.flit_payload_bits, 4, 10)});
  schedule.push_back({3, 12, 15, make_payloads(cfg.flit_payload_bits, 4, 11)});
  schedule.push_back({3, 4, 7, make_payloads(cfg.flit_payload_bits, 4, 12)});
  EXPECT_TRUE(run_differential(cfg, schedule));
}

TEST(AnalyticalEngine, BackToBackOnSharedLink) {
  // Two packets share their whole route with occupancy windows exactly
  // adjacent (gap 0): still congestion-free, wire state carries the
  // boundary transition between the packets.
  const NocConfig cfg = small_cfg(4, 4);
  std::vector<ScheduledPacket> schedule;
  schedule.push_back({10, 1, 14, make_payloads(cfg.flit_payload_bits, 5, 20)});
  schedule.push_back({15, 1, 14, make_payloads(cfg.flit_payload_bits, 5, 21)});
  EXPECT_TRUE(run_differential(cfg, schedule));
}

TEST(AnalyticalEngine, SparseRandomSchedule16x16Threaded) {
  // A paper-scale mesh with randomized sparse traffic; serialized packets
  // (gap > max drain distance) keep it congestion-free by construction.
  // Evaluated with 1 and 4 worker threads: identical results.
  NocConfig cfg = small_cfg(16, 16);
  Rng rng(99);
  std::vector<ScheduledPacket> schedule;
  std::uint64_t cycle = 0;
  for (int i = 0; i < 60; ++i) {
    const auto src = static_cast<std::int32_t>(rng.uniform_int(0, 255));
    auto dst = static_cast<std::int32_t>(rng.uniform_int(0, 255));
    if (dst == src) dst = (dst + 1) % 256;
    schedule.push_back(
        {cycle, src, dst,
         make_payloads(cfg.flit_payload_bits,
                       static_cast<std::size_t>(rng.uniform_int(1, 6)),
                       static_cast<std::uint64_t>(i))});
    cycle += 45;  // > max 30 hops + 6 flits + constant drain slack
  }
  EXPECT_TRUE(run_differential(cfg, schedule, 1));
  EXPECT_TRUE(run_differential(cfg, schedule, 4));

  // Thread-count invariance, directly: same schedule, 1 vs 4 workers.
  AnalyticalEngine a1(cfg), a4(cfg);
  for (const ScheduledPacket& p : schedule) {
    a1.inject(p.cycle, p.src, p.dst, p.payloads);
    a4.inject(p.cycle, p.src, p.dst, p.payloads);
  }
  ASSERT_TRUE(a1.run(1));
  ASSERT_TRUE(a4.run(4));
  EXPECT_EQ(a1.bt().snapshot(), a4.bt().snapshot());
  EXPECT_EQ(a1.cycle(), a4.cycle());
  EXPECT_EQ(a1.stats().packet_latency.mean(),
            a4.stats().packet_latency.mean());
}

TEST(AnalyticalEngine, YxRoutingAndTallMesh) {
  NocConfig cfg = small_cfg(6, 2);
  cfg.routing = RoutingAlgorithm::kYX;
  std::vector<ScheduledPacket> schedule;
  schedule.push_back({0, 0, 11, make_payloads(cfg.flit_payload_bits, 4, 30)});
  schedule.push_back({60, 11, 0, make_payloads(cfg.flit_payload_bits, 4, 31)});
  schedule.push_back({120, 3, 8, make_payloads(cfg.flit_payload_bits, 2, 32)});
  EXPECT_TRUE(run_differential(cfg, schedule));
}

TEST(AnalyticalEngine, ChannelLatencyTwo) {
  NocConfig cfg = small_cfg(3, 3);
  cfg.channel_latency = 2;
  cfg.vc_buffer_depth = 4;  // exactly 2 * latency: still streamable
  std::vector<ScheduledPacket> schedule;
  schedule.push_back({5, 0, 8, make_payloads(cfg.flit_payload_bits, 4, 40)});
  schedule.push_back({90, 8, 0, make_payloads(cfg.flit_payload_bits, 3, 41)});
  EXPECT_TRUE(run_differential(cfg, schedule));
}

TEST(AnalyticalEngine, DetectsContentionOnSharedLink) {
  // Same source, same cycle: the injection link is oversubscribed.
  const NocConfig cfg = small_cfg(4, 4);
  AnalyticalEngine ana(cfg);
  ana.inject(5, 0, 3, make_payloads(cfg.flit_payload_bits, 4, 50));
  ana.inject(5, 0, 12, make_payloads(cfg.flit_payload_bits, 4, 51));
  EXPECT_FALSE(ana.run());
  EXPECT_NE(ana.contention_detail().find("not congestion-free"),
            std::string::npos)
      << ana.contention_detail();
}

TEST(AnalyticalEngine, DetectsContentionMidRoute) {
  // Different sources whose XY routes merge on the same east-bound column
  // segment at overlapping cycles.
  const NocConfig cfg = small_cfg(4, 4);
  AnalyticalEngine ana(cfg);
  ana.inject(0, 0, 3, make_payloads(cfg.flit_payload_bits, 6, 60));
  ana.inject(1, 1, 3, make_payloads(cfg.flit_payload_bits, 6, 61));
  EXPECT_FALSE(ana.run());
  EXPECT_NE(ana.contention_detail().find("link"), std::string::npos);
}

TEST(AnalyticalEngine, ShallowBuffersAreUnsupported) {
  NocConfig cfg = small_cfg(3, 3);
  cfg.vc_buffer_depth = 1;  // < 2 * channel_latency: cannot stream
  EXPECT_NE(AnalyticalEngine::unsupported_reason(cfg), "");
  AnalyticalEngine ana(cfg);
  ana.inject(0, 0, 8, make_payloads(cfg.flit_payload_bits, 4, 70));
  EXPECT_FALSE(ana.run());
  EXPECT_NE(ana.contention_detail().find("vc_buffer_depth"),
            std::string::npos);
  // The default config is supported.
  EXPECT_EQ(AnalyticalEngine::unsupported_reason(NocConfig{}), "");
}

TEST(AnalyticalEngine, InjectValidationMirrorsNetwork) {
  NocConfig cfg = small_cfg(2, 2);
  cfg.allow_self_traffic = false;
  AnalyticalEngine ana(cfg);
  const auto payloads = make_payloads(cfg.flit_payload_bits, 2, 80);
  EXPECT_THROW(ana.inject(0, -1, 1, payloads), std::invalid_argument);
  EXPECT_THROW(ana.inject(0, 0, 4, payloads), std::invalid_argument);
  EXPECT_THROW(ana.inject(0, 1, 1, payloads), std::invalid_argument);
  EXPECT_THROW(ana.inject(0, 0, 1, {}), std::invalid_argument);
  EXPECT_THROW(ana.inject(0, 0, 1, make_payloads(32, 2, 81)),
               std::invalid_argument);
  EXPECT_THROW([[maybe_unused]] auto r = Network(cfg).inject(1, 1, payloads),
               std::invalid_argument);
  // Network refuses to run the analytical backend in its cycle loop.
  NocConfig bad = cfg;
  bad.engine = SimEngine::kAnalytical;
  EXPECT_THROW(Network net(bad), std::invalid_argument);
  // Single-shot lifecycle: no injecting or re-running after run().
  ana.inject(0, 0, 1, payloads);
  ASSERT_TRUE(ana.run());
  EXPECT_THROW(ana.inject(9, 0, 1, payloads), std::logic_error);
  EXPECT_THROW(ana.run(), std::logic_error);
}

TEST(AnalyticalEngine, EmptyScheduleIsTrivial) {
  AnalyticalEngine ana(small_cfg(4, 4));
  EXPECT_TRUE(ana.run());
  EXPECT_EQ(ana.cycle(), 0u);
  EXPECT_EQ(ana.bt().total(), 0u);
  EXPECT_EQ(ana.stats().packets_delivered, 0u);
}

}  // namespace
}  // namespace nocbt::noc
