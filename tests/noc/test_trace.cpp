// Tests for the packet traffic trace (paper Fig. 7 output): recording,
// CSV dump, and the load_csv replay path round-tripping every field.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>

#include "noc/trace.h"

namespace nocbt::noc {
namespace {

TraceEvent make_event(std::uint64_t id) {
  TraceEvent e;
  e.packet_id = id;
  e.src = static_cast<std::int32_t>(id % 16);
  e.dst = static_cast<std::int32_t>((id * 7 + 3) % 16);
  e.num_flits = static_cast<std::uint32_t>(1 + id % 9);
  e.inject_cycle = id * 10;
  e.eject_cycle = id * 10 + 5 + id % 11;
  e.hops = static_cast<std::uint16_t>(1 + id % 6);
  return e;
}

void expect_events_equal(const TraceEvent& a, const TraceEvent& b) {
  EXPECT_EQ(a.packet_id, b.packet_id);
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
  EXPECT_EQ(a.num_flits, b.num_flits);
  EXPECT_EQ(a.inject_cycle, b.inject_cycle);
  EXPECT_EQ(a.eject_cycle, b.eject_cycle);
  EXPECT_EQ(a.hops, b.hops);
}

TEST(PacketTrace, RecordAccumulates) {
  PacketTrace trace;
  EXPECT_EQ(trace.size(), 0u);
  trace.record(make_event(1));
  trace.record(make_event(2));
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.events()[0].packet_id, 1u);
  EXPECT_EQ(trace.events()[1].packet_id, 2u);
}

TEST(PacketTrace, DumpLoadRoundTrip) {
  const std::string path = testing::TempDir() + "nocbt_trace_roundtrip.csv";
  PacketTrace trace;
  for (std::uint64_t id = 0; id < 25; ++id) trace.record(make_event(id));

  EXPECT_EQ(trace.dump_csv(path), trace.size());

  const PacketTrace replayed = PacketTrace::load_csv(path);
  ASSERT_EQ(replayed.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i)
    expect_events_equal(replayed.events()[i], trace.events()[i]);
}

TEST(PacketTrace, DumpLoadDumpIsByteStable) {
  // dump -> load -> dump must reproduce the file byte for byte, proving
  // the loader recovers *exactly* what the writer emitted (no lossy
  // parsing, no reordering, no re-derived fields drifting).
  const std::string path_a = testing::TempDir() + "nocbt_trace_stable_a.csv";
  const std::string path_b = testing::TempDir() + "nocbt_trace_stable_b.csv";
  PacketTrace trace;
  for (std::uint64_t id = 0; id < 40; ++id) trace.record(make_event(id * 3));
  trace.dump_csv(path_a);
  PacketTrace::load_csv(path_a).dump_csv(path_b);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string bytes = slurp(path_a);
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, slurp(path_b));
}

TEST(PacketTrace, CrlfTraceRoundTripsThroughDump) {
  // A foreign CRLF trace, loaded and re-dumped, loads again to the same
  // events — CRLF tolerance composes with the round-trip guarantee.
  const std::string crlf_path = testing::TempDir() + "nocbt_trace_crlf_rt.csv";
  std::ofstream(crlf_path)
      << "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops\r\n"
      << "3,1,14,5,100,117,17,4\r\n"
      << "4,2,13,1,101,110,9,3\r\n";
  const PacketTrace loaded = PacketTrace::load_csv(crlf_path);
  ASSERT_EQ(loaded.size(), 2u);

  const std::string dumped_path = testing::TempDir() + "nocbt_trace_crlf_rt2.csv";
  loaded.dump_csv(dumped_path);
  const PacketTrace reloaded = PacketTrace::load_csv(dumped_path);
  ASSERT_EQ(reloaded.size(), loaded.size());
  for (std::size_t i = 0; i < loaded.size(); ++i)
    expect_events_equal(reloaded.events()[i], loaded.events()[i]);
}

TEST(PacketTrace, EmptyTraceRoundTrips) {
  const std::string path = testing::TempDir() + "nocbt_trace_empty.csv";
  PacketTrace trace;
  EXPECT_EQ(trace.dump_csv(path), 0u);
  EXPECT_EQ(PacketTrace::load_csv(path).size(), 0u);
}

TEST(PacketTrace, LoadMissingFileThrows) {
  EXPECT_THROW(PacketTrace::load_csv("/nonexistent/dir/trace.csv"),
               std::runtime_error);
}

TEST(PacketTrace, LoadRejectsWrongHeader) {
  const std::string path = testing::TempDir() + "nocbt_trace_badheader.csv";
  std::ofstream(path) << "id,src,dst\n1,2,3\n";
  EXPECT_THROW(PacketTrace::load_csv(path), std::runtime_error);
}

TEST(PacketTrace, LoadRejectsMalformedRow) {
  const std::string path = testing::TempDir() + "nocbt_trace_badrow.csv";
  std::ofstream(path)
      << "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops\n"
      << "1,0,3,4,10,15,5\n";  // 7 cells
  EXPECT_THROW(PacketTrace::load_csv(path), std::runtime_error);

  std::ofstream(path)
      << "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops\n"
      << "one,0,3,4,10,15,5,2\n";  // non-numeric id
  EXPECT_THROW(PacketTrace::load_csv(path), std::runtime_error);

  std::ofstream(path)
      << "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops\n"
      << "1,0,3,4,10,15,5,70000\n";  // hops overflows uint16
  EXPECT_THROW(PacketTrace::load_csv(path), std::runtime_error);

  std::ofstream(path)
      << "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops\n"
      << "12abc,0,3,4,10,15,5,2\n";  // trailing garbage
  EXPECT_THROW(PacketTrace::load_csv(path), std::runtime_error);

  std::ofstream(path)
      << "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops\n"
      << "1,0,3,4,10,15,9,2\n";  // latency contradicts eject - inject
  EXPECT_THROW(PacketTrace::load_csv(path), std::runtime_error);

  std::ofstream(path)
      << "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops\n"
      << " -1,0,3,4,10,15,5,2\n";  // whitespace-masked sign must not wrap
  EXPECT_THROW(PacketTrace::load_csv(path), std::runtime_error);

  std::ofstream(path)
      << "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops\n"
      << "1, 0,3,4,10,15,5,2\n";  // signed fields are whole-cell strict too
  EXPECT_THROW(PacketTrace::load_csv(path), std::runtime_error);

  std::ofstream(path)
      << "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops\n"
      << "1,0,3,4,20,10,18446744073709551606,2\n";  // eject before inject
  EXPECT_THROW(PacketTrace::load_csv(path), std::runtime_error);
}

TEST(PacketTrace, LoadToleratesCrlfLineEndings) {
  const std::string path = testing::TempDir() + "nocbt_trace_crlf.csv";
  std::ofstream(path)
      << "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops\r\n"
      << "7,2,5,3,10,18,8,4\r\n";
  const PacketTrace trace = PacketTrace::load_csv(path);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.events()[0].packet_id, 7u);
  EXPECT_EQ(trace.events()[0].hops, 4u);
}

}  // namespace
}  // namespace nocbt::noc
