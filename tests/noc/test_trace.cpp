// Tests for the packet traffic trace (paper Fig. 7 output): recording,
// CSV dump, and the load_csv replay path round-tripping every field.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>

#include "noc/trace.h"

namespace nocbt::noc {
namespace {

TraceEvent make_event(std::uint64_t id) {
  TraceEvent e;
  e.packet_id = id;
  e.src = static_cast<std::int32_t>(id % 16);
  e.dst = static_cast<std::int32_t>((id * 7 + 3) % 16);
  e.num_flits = static_cast<std::uint32_t>(1 + id % 9);
  e.inject_cycle = id * 10;
  e.eject_cycle = id * 10 + 5 + id % 11;
  e.hops = static_cast<std::uint16_t>(1 + id % 6);
  return e;
}

void expect_events_equal(const TraceEvent& a, const TraceEvent& b) {
  EXPECT_EQ(a.packet_id, b.packet_id);
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
  EXPECT_EQ(a.num_flits, b.num_flits);
  EXPECT_EQ(a.inject_cycle, b.inject_cycle);
  EXPECT_EQ(a.eject_cycle, b.eject_cycle);
  EXPECT_EQ(a.hops, b.hops);
}

TEST(PacketTrace, RecordAccumulates) {
  PacketTrace trace;
  EXPECT_EQ(trace.size(), 0u);
  trace.record(make_event(1));
  trace.record(make_event(2));
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.events()[0].packet_id, 1u);
  EXPECT_EQ(trace.events()[1].packet_id, 2u);
}

TEST(PacketTrace, DumpLoadRoundTrip) {
  const std::string path = testing::TempDir() + "nocbt_trace_roundtrip.csv";
  PacketTrace trace;
  for (std::uint64_t id = 0; id < 25; ++id) trace.record(make_event(id));

  EXPECT_EQ(trace.dump_csv(path), trace.size());

  const PacketTrace replayed = PacketTrace::load_csv(path);
  ASSERT_EQ(replayed.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i)
    expect_events_equal(replayed.events()[i], trace.events()[i]);
}

TEST(PacketTrace, DumpLoadDumpIsByteStable) {
  // dump -> load -> dump must reproduce the file byte for byte, proving
  // the loader recovers *exactly* what the writer emitted (no lossy
  // parsing, no reordering, no re-derived fields drifting).
  const std::string path_a = testing::TempDir() + "nocbt_trace_stable_a.csv";
  const std::string path_b = testing::TempDir() + "nocbt_trace_stable_b.csv";
  PacketTrace trace;
  for (std::uint64_t id = 0; id < 40; ++id) trace.record(make_event(id * 3));
  trace.dump_csv(path_a);
  PacketTrace::load_csv(path_a).dump_csv(path_b);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string bytes = slurp(path_a);
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, slurp(path_b));
}

TEST(PacketTrace, CrlfTraceRoundTripsThroughDump) {
  // A foreign CRLF trace, loaded and re-dumped, loads again to the same
  // events — CRLF tolerance composes with the round-trip guarantee.
  const std::string crlf_path = testing::TempDir() + "nocbt_trace_crlf_rt.csv";
  std::ofstream(crlf_path)
      << "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops\r\n"
      << "3,1,14,5,100,117,17,4\r\n"
      << "4,2,13,1,101,110,9,3\r\n";
  const PacketTrace loaded = PacketTrace::load_csv(crlf_path);
  ASSERT_EQ(loaded.size(), 2u);

  const std::string dumped_path = testing::TempDir() + "nocbt_trace_crlf_rt2.csv";
  loaded.dump_csv(dumped_path);
  const PacketTrace reloaded = PacketTrace::load_csv(dumped_path);
  ASSERT_EQ(reloaded.size(), loaded.size());
  for (std::size_t i = 0; i < loaded.size(); ++i)
    expect_events_equal(reloaded.events()[i], loaded.events()[i]);
}

TEST(PacketTrace, EmptyTraceRoundTrips) {
  const std::string path = testing::TempDir() + "nocbt_trace_empty.csv";
  PacketTrace trace;
  EXPECT_EQ(trace.dump_csv(path), 0u);
  EXPECT_EQ(PacketTrace::load_csv(path).size(), 0u);
}

TEST(PacketTrace, LoadMissingFileThrows) {
  EXPECT_THROW(PacketTrace::load_csv("/nonexistent/dir/trace.csv"),
               std::runtime_error);
}

TEST(PacketTrace, LoadRejectsWrongHeader) {
  const std::string path = testing::TempDir() + "nocbt_trace_badheader.csv";
  std::ofstream(path) << "id,src,dst\n1,2,3\n";
  EXPECT_THROW(PacketTrace::load_csv(path), std::runtime_error);
}

TEST(PacketTrace, LoadRejectsMalformedRow) {
  const std::string path = testing::TempDir() + "nocbt_trace_badrow.csv";
  std::ofstream(path)
      << "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops\n"
      << "1,0,3,4,10,15,5\n";  // 7 cells
  EXPECT_THROW(PacketTrace::load_csv(path), std::runtime_error);

  std::ofstream(path)
      << "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops\n"
      << "one,0,3,4,10,15,5,2\n";  // non-numeric id
  EXPECT_THROW(PacketTrace::load_csv(path), std::runtime_error);

  std::ofstream(path)
      << "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops\n"
      << "1,0,3,4,10,15,5,70000\n";  // hops overflows uint16
  EXPECT_THROW(PacketTrace::load_csv(path), std::runtime_error);

  std::ofstream(path)
      << "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops\n"
      << "12abc,0,3,4,10,15,5,2\n";  // trailing garbage
  EXPECT_THROW(PacketTrace::load_csv(path), std::runtime_error);

  std::ofstream(path)
      << "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops\n"
      << "1,0,3,4,10,15,9,2\n";  // latency contradicts eject - inject
  EXPECT_THROW(PacketTrace::load_csv(path), std::runtime_error);

  std::ofstream(path)
      << "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops\n"
      << " -1,0,3,4,10,15,5,2\n";  // whitespace-masked sign must not wrap
  EXPECT_THROW(PacketTrace::load_csv(path), std::runtime_error);

  std::ofstream(path)
      << "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops\n"
      << "1, 0,3,4,10,15,5,2\n";  // signed fields are whole-cell strict too
  EXPECT_THROW(PacketTrace::load_csv(path), std::runtime_error);

  std::ofstream(path)
      << "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops\n"
      << "1,0,3,4,20,10,18446744073709551606,2\n";  // eject before inject
  EXPECT_THROW(PacketTrace::load_csv(path), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Fuzz-style negative coverage of the v2 payload columns: every malformed
// shape a hand-edited or truncated trace can take must fail with an error
// that names the problem — never crash, never silently accept.

constexpr char kPayloadHeader[] =
    "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops,"
    "weights,inputs";

void expect_load_error(const std::string& path, const std::string& needle) {
  try {
    const PacketTrace trace = PacketTrace::load_csv(path);
    FAIL() << "expected load_csv to reject " << path << " (loaded "
           << trace.size() << " events)";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error message was: " << e.what();
  }
}

TEST(PacketTraceFuzz, TruncatedHexPayloadNamesTheWordSize) {
  const std::string path = testing::TempDir() + "nocbt_trace_trunchex.csv";
  // 7 hex digits: a word cut short mid-write.
  std::ofstream(path) << kPayloadHeader << "\n"
                      << "1,0,3,4,10,15,5,2,0123456,89abcdef\n";
  expect_load_error(path, "whole number of 32-bit words");
}

TEST(PacketTraceFuzz, BadHexDigitIsNamed) {
  const std::string path = testing::TempDir() + "nocbt_trace_badhex.csv";
  // Uppercase hex is not the dump format; 'G' is not hex at all.
  std::ofstream(path) << kPayloadHeader << "\n"
                      << "1,0,3,4,10,15,5,2,0123456F,89abcdef\n";
  expect_load_error(path, "bad hex digit");
  std::ofstream(path) << kPayloadHeader << "\n"
                      << "1,0,3,4,10,15,5,2,0123456g,89abcdef\n";
  expect_load_error(path, "bad hex digit");
}

TEST(PacketTraceFuzz, WrongColumnCountsUnderPayloadHeader) {
  const std::string path = testing::TempDir() + "nocbt_trace_badcols.csv";
  // 9 cells: one payload column missing.
  std::ofstream(path) << kPayloadHeader << "\n"
                      << "1,0,3,4,10,15,5,2,01234567\n";
  expect_load_error(path, "9 cells");
  // 11 cells: a stray comma inside a payload edit.
  std::ofstream(path) << kPayloadHeader << "\n"
                      << "1,0,3,4,10,15,5,2,01234567,89abcdef,deadbeef\n";
  expect_load_error(path, "11 cells");
}

TEST(PacketTraceFuzz, PayloadRowsUnderLegacyHeaderAreRejected) {
  const std::string path = testing::TempDir() + "nocbt_trace_legacypayload.csv";
  std::ofstream(path)
      << "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops\n"
      << "1,0,3,4,10,15,5,2,01234567,89abcdef\n";
  expect_load_error(path, "10 cells");
}

TEST(PacketTraceFuzz, MismatchedPayloadStreamsNameBothCounts) {
  const std::string path = testing::TempDir() + "nocbt_trace_mismatch.csv";
  std::ofstream(path)
      << kPayloadHeader << "\n"
      << "1,0,3,4,10,15,5,2,0123456789abcdef,89abcdef\n";  // 2 words vs 1
  expect_load_error(path, "matched streams");
}

TEST(PacketTraceFuzz, OutOfRangeValuesSayOutOfRange) {
  const std::string path = testing::TempDir() + "nocbt_trace_oor.csv";
  // packet_id beyond uint64: stoull itself overflows — the error must name
  // the cell, not leak the implementation's "stoull".
  std::ofstream(path) << kPayloadHeader << "\n"
                      << "99999999999999999999999,0,3,4,10,15,5,2,,\n";
  expect_load_error(path, "value out of range: 99999999999999999999999");
  // src beyond int32 (both the stoll-overflow and the int32-cap paths).
  std::ofstream(path) << kPayloadHeader << "\n"
                      << "1,99999999999999999999999,3,4,10,15,5,2,,\n";
  expect_load_error(path, "value out of range");
  std::ofstream(path) << kPayloadHeader << "\n"
                      << "1,3000000000,3,4,10,15,5,2,,\n";
  expect_load_error(path, "value out of range: 3000000000");
}

TEST(PacketTraceFuzz, EmptyPayloadCellsMeanNoPayload) {
  const std::string path = testing::TempDir() + "nocbt_trace_emptypayload.csv";
  std::ofstream(path) << kPayloadHeader << "\n"
                      << "1,0,3,4,10,15,5,2,,\n";
  const PacketTrace trace = PacketTrace::load_csv(path);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_TRUE(trace.events()[0].weights.empty());
  EXPECT_TRUE(trace.events()[0].inputs.empty());
}

TEST(PacketTraceFuzz, CrlfPayloadRowRoundTrips) {
  const std::string crlf = testing::TempDir() + "nocbt_trace_crlfpayload.csv";
  std::ofstream(crlf) << kPayloadHeader << "\r\n"
                      << "1,0,3,4,10,15,5,2,0123456789abcdef,deadbeef00ff00ff\r\n";
  const PacketTrace loaded = PacketTrace::load_csv(crlf);
  ASSERT_EQ(loaded.size(), 1u);
  ASSERT_EQ(loaded.events()[0].weights.size(), 2u);
  EXPECT_EQ(loaded.events()[0].weights[0], 0x01234567u);
  EXPECT_EQ(loaded.events()[0].weights[1], 0x89abcdefu);
  ASSERT_EQ(loaded.events()[0].inputs.size(), 2u);
  EXPECT_EQ(loaded.events()[0].inputs[0], 0xdeadbeefu);
  EXPECT_EQ(loaded.events()[0].inputs[1], 0x00ff00ffu);

  const std::string redump = testing::TempDir() + "nocbt_trace_crlfpayload2.csv";
  loaded.dump_csv(redump);
  const PacketTrace reloaded = PacketTrace::load_csv(redump);
  ASSERT_EQ(reloaded.size(), 1u);
  EXPECT_EQ(reloaded.events()[0].weights, loaded.events()[0].weights);
  EXPECT_EQ(reloaded.events()[0].inputs, loaded.events()[0].inputs);
}

TEST(PacketTrace, LoadToleratesCrlfLineEndings) {
  const std::string path = testing::TempDir() + "nocbt_trace_crlf.csv";
  std::ofstream(path)
      << "packet_id,src,dst,num_flits,inject_cycle,eject_cycle,latency,hops\r\n"
      << "7,2,5,3,10,18,8,4\r\n";
  const PacketTrace trace = PacketTrace::load_csv(path);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.events()[0].packet_id, 7u);
  EXPECT_EQ(trace.events()[0].hops, 4u);
}

}  // namespace
}  // namespace nocbt::noc
