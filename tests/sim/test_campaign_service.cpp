// End-to-end tests for the campaign service: sharded execution that
// merges byte-identical to a serial sweep (under both an auto/analytical
// and a forced cycle engine), warm-cache reruns that simulate nothing,
// kill/resume through the journal (including a torn final record), the
// spec-hash gate on resume=, and corrupt cache entries being diagnosed,
// re-simulated and overwritten.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "noc/noc_config.h"
#include "sim/campaign.h"
#include "sim/campaign_executor.h"
#include "sim/campaign_report.h"
#include "sim/run_journal.h"
#include "sim/scenario_cache.h"

namespace nocbt::sim {
namespace {

namespace fs = std::filesystem;

/// A fresh scratch path under the gtest temp dir; anything left behind by
/// a previous run of the same test is wiped so cold runs are really cold.
std::string scratch(const std::string& leaf) {
  const std::string path = testing::TempDir() + "nocbt_service_" + leaf;
  fs::remove_all(path);
  return path;
}

CampaignSpec service_campaign(bool force_active_set) {
  CampaignSpec camp;
  camp.name = "service-unit";
  camp.root_seed = 404;
  camp.generators = {GeneratorKind::kUniform, GeneratorKind::kHotspot};
  camp.formats = {DataFormat::kFloat32, DataFormat::kFixed8};
  camp.modes = {ordering::OrderingMode::kBaseline,
                ordering::OrderingMode::kSeparated};
  camp.meshes = {MeshSpec{4, 4, 2}};
  camp.windows = {16};
  camp.base.packets = 24;
  camp.base.injection_rate = 0.5;
  if (force_active_set) {
    camp.base.engine_auto = false;
    camp.base.engine = noc::SimEngine::kActiveSet;
  }
  return camp;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Rows must match field-for-field (operator== already excludes the
/// wall-clock fields) and render to identical report bytes.
void expect_identical_reports(const CampaignSpec& spec,
                              const CampaignResult& a,
                              const CampaignResult& b,
                              const std::string& label) {
  ASSERT_EQ(a.rows.size(), b.rows.size()) << label;
  for (std::size_t i = 0; i < a.rows.size(); ++i)
    EXPECT_TRUE(a.rows[i] == b.rows[i])
        << label << ": row " << i << " (" << a.rows[i].spec.name << ")";
  EXPECT_EQ(json_report(spec, a), json_report(spec, b)) << label;
}

TEST(ShardSpec, ParsesRoundTripsAndRejects) {
  const ShardSpec s = parse_shard_spec("2/4");
  EXPECT_EQ(s.index, 2u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(to_string(s), "2/4");
  EXPECT_EQ(parse_shard_spec("0/1").count, 1u);
  for (const char* bad : {"", "3", "1/", "/4", "4/4", "5/4", "a/b", "1/0",
                          "-1/4", "1/4/2", "1 /4"})
    EXPECT_THROW((void)parse_shard_spec(bad), std::invalid_argument) << bad;
}

class CampaignServiceEngines : public testing::TestWithParam<bool> {};

INSTANTIATE_TEST_SUITE_P(AutoAndActiveSet, CampaignServiceEngines,
                         testing::Values(false, true),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? "ActiveSetEngine"
                                             : "AutoEngine";
                         });

TEST_P(CampaignServiceEngines, ShardedRunsMergeByteIdenticalToSerial) {
  const CampaignSpec camp = service_campaign(GetParam());
  const CampaignResult serial = run_campaign(camp);
  const std::string serial_json = json_report(camp, serial);
  const std::string tag = GetParam() ? "as" : "auto";

  for (const std::uint32_t count : {1u, 2u, 4u}) {
    std::vector<std::string> journals;
    std::size_t assigned_total = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      RunnerConfig runner;
      runner.threads = 2;
      runner.exec.shard = ShardSpec{i, count};
      runner.exec.journal_path =
          scratch(tag + std::to_string(count) + "_" + std::to_string(i) +
                  ".jnl");
      journals.push_back(runner.exec.journal_path);
      const CampaignResult shard = run_campaign(camp, runner);
      EXPECT_EQ(shard.rows.size(), shard.stats.assigned);
      assigned_total += shard.stats.assigned;
    }
    EXPECT_EQ(assigned_total, serial.rows.size())
        << count << " shards must partition the expansion exactly";

    const CampaignResult merged = merge_campaign(camp, journals);
    expect_identical_reports(camp, serial, merged,
                             std::to_string(count) + "-way merge");
    EXPECT_EQ(json_report(camp, merged), serial_json);

    // The CSV artifacts must cmp-match too (what the CI gate does).
    const std::string serial_csv = scratch(tag + "_serial.csv");
    const std::string merged_csv = scratch(tag + "_merged.csv");
    (void)write_csv_report(serial_csv, camp, serial);
    (void)write_csv_report(merged_csv, camp, merged);
    EXPECT_EQ(read_file(serial_csv), read_file(merged_csv));
  }
}

TEST_P(CampaignServiceEngines, WarmCacheRerunSimulatesNothing) {
  const CampaignSpec camp = service_campaign(GetParam());
  RunnerConfig runner;
  runner.threads = 2;
  runner.exec.cache_dir =
      scratch(std::string("warm_") + (GetParam() ? "as" : "auto"));

  const CampaignResult cold = run_campaign(camp, runner);
  EXPECT_EQ(cold.stats.simulated, cold.rows.size());
  EXPECT_EQ(cold.stats.cache_hits, 0u);

  const CampaignResult warm = run_campaign(camp, runner);
  EXPECT_EQ(warm.stats.simulated, 0u) << "warm rerun must re-simulate nothing";
  EXPECT_EQ(warm.stats.cache_hits, warm.rows.size());
  expect_identical_reports(camp, cold, warm, "warm rerun");
}

TEST(CampaignService, ResumeSkipsJournaledRows) {
  const CampaignSpec camp = service_campaign(false);
  RunnerConfig runner;
  runner.exec.journal_path = scratch("resume.jnl");

  const CampaignResult first = run_campaign(camp, runner);
  EXPECT_EQ(first.stats.simulated, first.rows.size());

  const CampaignResult resumed = run_campaign(camp, runner);
  EXPECT_EQ(resumed.stats.simulated, 0u);
  EXPECT_EQ(resumed.stats.journal_hits, resumed.rows.size());
  expect_identical_reports(camp, first, resumed, "journal resume");
}

TEST(CampaignService, TornJournalRecordIsWarnedAndOnlyThatRowReruns) {
  const CampaignSpec camp = service_campaign(false);
  RunnerConfig runner;
  runner.exec.journal_path = scratch("torn.jnl");
  const CampaignResult first = run_campaign(camp, runner);

  // Tear the final record in half — the shape a kill -9 mid-append leaves.
  std::string body = read_file(runner.exec.journal_path);
  const std::size_t cut = body.rfind("rec,");
  ASSERT_NE(cut, std::string::npos);
  {
    std::ofstream out(runner.exec.journal_path,
                      std::ios::binary | std::ios::trunc);
    out << body.substr(0, cut + 25);
  }

  const CampaignResult resumed = run_campaign(camp, runner);
  EXPECT_EQ(resumed.stats.simulated, 1u)
      << "only the torn row may re-simulate";
  EXPECT_EQ(resumed.stats.journal_hits, resumed.rows.size() - 1);
  ASSERT_FALSE(resumed.stats.warnings.empty());
  EXPECT_NE(resumed.stats.warnings[0].find(runner.exec.journal_path),
            std::string::npos)
      << resumed.stats.warnings[0];
  expect_identical_reports(camp, first, resumed, "torn-record resume");

  // The re-run was re-journaled: a third pass replays everything.
  const CampaignResult third = run_campaign(camp, runner);
  EXPECT_EQ(third.stats.simulated, 0u);
  EXPECT_TRUE(third.stats.warnings.empty());
}

TEST(CampaignService, ResumeRefusesAJournalFromADifferentSpec) {
  const CampaignSpec camp = service_campaign(false);
  RunnerConfig runner;
  runner.exec.journal_path = scratch("mismatch.jnl");
  (void)run_campaign(camp, runner);

  CampaignSpec other = camp;
  other.root_seed = 405;
  try {
    (void)run_campaign(other, runner);
    FAIL() << "resume across differing specs must be refused";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(runner.exec.journal_path), std::string::npos) << what;
    EXPECT_NE(what.find(campaign_content_hash(camp)), std::string::npos)
        << what;
    EXPECT_NE(what.find(campaign_content_hash(other)), std::string::npos)
        << what;
  }
}

TEST(CampaignService, CorruptCacheEntryIsDiagnosedRerunAndOverwritten) {
  const CampaignSpec camp = service_campaign(false);
  RunnerConfig runner;
  runner.exec.cache_dir = scratch("corrupt_cache");
  const CampaignResult cold = run_campaign(camp, runner);

  // Flip one digit inside the first entry's record line.
  std::string victim;
  for (const auto& entry : fs::directory_iterator(runner.exec.cache_dir)) {
    victim = entry.path().string();
    break;
  }
  ASSERT_FALSE(victim.empty());
  std::string body = read_file(victim);
  const std::size_t rec = body.find("rec,");
  ASSERT_NE(rec, std::string::npos);
  body[rec + 20] = body[rec + 20] == '1' ? '2' : '1';
  {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out << body;
  }

  const CampaignResult repaired = run_campaign(camp, runner);
  EXPECT_EQ(repaired.stats.simulated, 1u)
      << "only the damaged entry may re-simulate";
  EXPECT_EQ(repaired.stats.cache_hits, repaired.rows.size() - 1);
  ASSERT_FALSE(repaired.stats.warnings.empty());
  EXPECT_NE(repaired.stats.warnings[0].find(victim), std::string::npos)
      << "diagnostic must name the damaged file: "
      << repaired.stats.warnings[0];
  expect_identical_reports(camp, cold, repaired, "corrupt-entry repair");

  // The re-simulated row overwrote the damaged entry.
  const CampaignResult healed = run_campaign(camp, runner);
  EXPECT_EQ(healed.stats.simulated, 0u);
  EXPECT_TRUE(healed.stats.warnings.empty());
}

TEST(CampaignService, CacheAndJournalComposeAcrossRestarts) {
  // Simulate once with only a cache; then a journaled run over the same
  // cache replays everything from the cache while writing its journal;
  // then a pure resume replays from the journal.
  const CampaignSpec camp = service_campaign(false);
  RunnerConfig cache_only;
  cache_only.exec.cache_dir = scratch("compose_cache");
  const CampaignResult first = run_campaign(camp, cache_only);

  RunnerConfig both = cache_only;
  both.exec.journal_path = scratch("compose.jnl");
  const CampaignResult second = run_campaign(camp, both);
  EXPECT_EQ(second.stats.simulated, 0u);
  EXPECT_EQ(second.stats.cache_hits, second.rows.size());

  RunnerConfig journal_only;
  journal_only.exec.journal_path = both.exec.journal_path;
  const CampaignResult third = run_campaign(camp, journal_only);
  EXPECT_EQ(third.stats.simulated, 0u);
  EXPECT_EQ(third.stats.journal_hits, third.rows.size());
  expect_identical_reports(camp, first, third, "cache->journal handoff");
}

}  // namespace
}  // namespace nocbt::sim
