// Tests for the campaign engine: grid expansion, deterministic seeding,
// thread-count invariance, ordering effectiveness, reports, and error
// containment.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/campaign.h"
#include "sim/campaign_executor.h"
#include "sim/campaign_report.h"

namespace nocbt::sim {
namespace {

CampaignSpec small_campaign() {
  CampaignSpec camp;
  camp.name = "unit";
  camp.root_seed = 99;
  camp.generators = {GeneratorKind::kUniform, GeneratorKind::kHotspot};
  camp.formats = {DataFormat::kFloat32, DataFormat::kFixed8};
  camp.modes = {ordering::OrderingMode::kBaseline,
                ordering::OrderingMode::kSeparated};
  camp.meshes = {MeshSpec{4, 4, 2}};
  camp.windows = {16};
  camp.base.packets = 24;
  camp.base.injection_rate = 0.5;
  return camp;
}

TEST(MeshSpec, ParsesAndRejects) {
  EXPECT_EQ(parse_mesh_spec("4x4").rows, 4);
  EXPECT_EQ(parse_mesh_spec("4x4").cols, 4);
  EXPECT_EQ(parse_mesh_spec("4x4").mcs, 2);  // default MC count
  const MeshSpec m = parse_mesh_spec("8x8mc4");
  EXPECT_EQ(m.rows, 8);
  EXPECT_EQ(m.cols, 8);
  EXPECT_EQ(m.mcs, 4);
  EXPECT_EQ(parse_mesh_spec("2X3MC1").cols, 3);
  EXPECT_THROW((void)parse_mesh_spec(""), std::invalid_argument);
  EXPECT_THROW((void)parse_mesh_spec("4"), std::invalid_argument);
  EXPECT_THROW((void)parse_mesh_spec("4x"), std::invalid_argument);
  EXPECT_THROW((void)parse_mesh_spec("4x4mc"), std::invalid_argument);
  EXPECT_THROW((void)parse_mesh_spec("4x4xx2"), std::invalid_argument);
  // Dimension cap guards rows*cols int32 arithmetic downstream.
  EXPECT_THROW((void)parse_mesh_spec("100000x100000"), std::invalid_argument);
}

TEST(Campaign, ExpansionCoversTheGridDeterministically) {
  const CampaignSpec camp = small_campaign();
  const auto scenarios = camp.expand();
  ASSERT_EQ(scenarios.size(), 2u * 2u * 2u * 1u * 1u);

  std::set<std::string> names;
  std::set<std::uint64_t> seeds;
  for (const auto& s : scenarios) {
    names.insert(s.name);
    seeds.insert(s.seed);
    EXPECT_EQ(s.packets, camp.base.packets);  // base knobs carried through
  }
  EXPECT_EQ(names.size(), scenarios.size()) << "scenario names must be unique";
  // Seeds identify *traffic streams*, not scenarios: the two mode rows of
  // each (generator, format) point share one seed so their pre-ordering
  // schedules are byte-identical, and distinct streams get distinct seeds.
  EXPECT_EQ(seeds.size(), scenarios.size() / camp.modes.size())
      << "one seed per mode-independent traffic stream";
  for (const auto& a : scenarios) {
    for (const auto& b : scenarios) {
      if (a.generator == b.generator && a.format == b.format &&
          a.window == b.window) {
        EXPECT_EQ(a.seed, b.seed)
            << "mode rows of one stream must share their seed";
      }
    }
  }

  const auto again = camp.expand();
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(scenarios[i].name, again[i].name);
    EXPECT_EQ(scenarios[i].seed, again[i].seed);
  }
}

TEST(Campaign, NamesStayUniqueAcrossIgnoredAxes) {
  // mcs is meaningless for synthetic traffic and window for model
  // workloads, but both must still appear in names or grid points that
  // differ only on an ignored axis would collide.
  CampaignSpec camp = small_campaign();
  camp.generators = {GeneratorKind::kUniform, GeneratorKind::kModel};
  camp.formats = {DataFormat::kFixed8};
  camp.modes = {ordering::OrderingMode::kSeparated};
  camp.meshes = {MeshSpec{4, 4, 2}, MeshSpec{4, 4, 4}};
  camp.windows = {16, 32};
  const auto scenarios = camp.expand();
  std::set<std::string> names;
  for (const auto& s : scenarios) names.insert(s.name);
  EXPECT_EQ(names.size(), scenarios.size());
}

TEST(Campaign, ReplicatesGetDistinctSeeds) {
  CampaignSpec camp = small_campaign();
  camp.generators = {GeneratorKind::kUniform};
  camp.formats = {DataFormat::kFixed8};
  camp.modes = {ordering::OrderingMode::kSeparated};
  camp.replicates = 3;
  const auto scenarios = camp.expand();
  ASSERT_EQ(scenarios.size(), 3u);
  EXPECT_NE(scenarios[0].seed, scenarios[1].seed);
  EXPECT_NE(scenarios[1].seed, scenarios[2].seed);
  EXPECT_NE(scenarios[0].name, scenarios[1].name);  // /r0, /r1, /r2 suffixes
}

TEST(Campaign, BaselineModeShowsZeroReduction) {
  CampaignSpec camp = small_campaign();
  camp.generators = {GeneratorKind::kUniform};
  camp.formats = {DataFormat::kFixed8};
  camp.modes = {ordering::OrderingMode::kBaseline};
  const auto result = run_campaign(camp);
  ASSERT_EQ(result.rows.size(), 1u);
  const ScenarioResult& row = result.rows[0];
  EXPECT_TRUE(row.error.empty()) << row.error;
  EXPECT_TRUE(row.drained);
  EXPECT_EQ(row.bt_baseline, row.bt_ordered);
  EXPECT_EQ(row.reduction, 0.0);
  EXPECT_EQ(row.packets, 24u);
  EXPECT_GT(row.bt_baseline, 0u);
  EXPECT_GT(row.cycles, 0u);
  EXPECT_GT(row.avg_hops, 0.0);
}

TEST(Campaign, OrderingReducesBtOnLaplaceFixed8) {
  CampaignSpec camp = small_campaign();
  camp.generators = {GeneratorKind::kUniform};
  camp.formats = {DataFormat::kFixed8};
  camp.modes = {ordering::OrderingMode::kSeparated};
  camp.base.packets = 64;
  // 64 pairs -> 8 flits per packet: enough within-packet transitions for
  // the sort to win over the adverse sorted-tail -> sorted-head boundary
  // between packets (a 2-flit packet is all boundary and can regress).
  camp.windows = {64};
  const auto result = run_campaign(camp);
  ASSERT_EQ(result.rows.size(), 1u);
  const ScenarioResult& row = result.rows[0];
  ASSERT_TRUE(row.error.empty()) << row.error;
  EXPECT_LT(row.bt_ordered, row.bt_baseline);
  EXPECT_GT(row.reduction, 0.0);
}

TEST(Campaign, SparseScheduleFastForwardsIdleGaps) {
  // burst_gap dwarfs max_cycles, but idle gaps are skipped (only active
  // steps count toward the stall guard), so the scenario still drains.
  CampaignSpec camp = small_campaign();
  camp.generators = {GeneratorKind::kBurst};
  camp.formats = {DataFormat::kFixed8};
  camp.modes = {ordering::OrderingMode::kSeparated};
  camp.base.packets = 16;
  camp.base.burst_len = 4;
  camp.base.burst_gap = 1'000'000;
  camp.base.max_cycles = 20'000;
  const auto result = run_campaign(camp);
  ASSERT_EQ(result.rows.size(), 1u);
  const ScenarioResult& row = result.rows[0];
  EXPECT_TRUE(row.error.empty()) << row.error;
  EXPECT_TRUE(row.drained);
  EXPECT_EQ(row.packets, 16u);
  EXPECT_GT(row.cycles, 3'000'000u);  // clock still reflects schedule time
}

TEST(Campaign, StallGuardFailsLoudlyAndNamesTheScenario) {
  // Regression: hitting the max_cycles stall guard must produce an error
  // row whose diagnostic names the scenario and the guard value — not a
  // silent truncation. Saturating traffic keeps the schedule contended so
  // the cycle engine (not the analytical fast path) is what stalls.
  CampaignSpec camp = small_campaign();
  camp.generators = {GeneratorKind::kUniform};
  camp.formats = {DataFormat::kFixed8};
  camp.modes = {ordering::OrderingMode::kSeparated};
  camp.base.packets = 64;
  camp.base.injection_rate = 4.0;
  camp.base.max_cycles = 3;  // tiny: trips immediately
  const auto result = run_campaign(camp);
  ASSERT_EQ(result.rows.size(), 1u);
  const ScenarioResult& row = result.rows[0];
  EXPECT_FALSE(row.drained);
  ASSERT_FALSE(row.error.empty());
  EXPECT_NE(row.error.find(row.spec.name), std::string::npos) << row.error;
  EXPECT_NE(row.error.find("max_cycles"), std::string::npos) << row.error;
  EXPECT_NE(row.error.find("3"), std::string::npos) << row.error;
  // The stalled row renders as a failure in the table, not as "ok".
  const std::string table = render_table(result);
  EXPECT_EQ(table.find(" ok"), std::string::npos) << table;
  // max_cycles = 0 cannot even start: rejected up front.
  camp.base.max_cycles = 0;
  const auto zero = run_campaign(camp);
  EXPECT_NE(zero.rows[0].error.find("max_cycles"), std::string::npos)
      << zero.rows[0].error;
}

TEST(Campaign, NanRateIsRejected) {
  CampaignSpec camp = small_campaign();
  camp.generators = {GeneratorKind::kUniform};
  camp.formats = {DataFormat::kFixed8};
  camp.modes = {ordering::OrderingMode::kBaseline};
  camp.base.injection_rate = std::numeric_limits<double>::quiet_NaN();
  const auto result = run_campaign(camp);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_NE(result.rows[0].error.find("injection_rate"), std::string::npos)
      << result.rows[0].error;
}

TEST(Campaign, ThreadCountDoesNotChangeResults) {
  const CampaignSpec camp = small_campaign();
  RunnerConfig serial;
  serial.threads = 1;
  RunnerConfig parallel;
  parallel.threads = 4;
  const CampaignResult a = run_campaign(camp, serial);
  const CampaignResult b = run_campaign(camp, parallel);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_TRUE(a.rows[i].error.empty()) << a.rows[i].error;
    EXPECT_TRUE(a.rows[i] == b.rows[i]) << a.rows[i].spec.name;
  }
  // And the machine-readable reports are byte-identical.
  EXPECT_EQ(json_report(camp, a), json_report(camp, b));
}

TEST(Campaign, OnResultSeesEveryScenario) {
  const CampaignSpec camp = small_campaign();
  RunnerConfig runner;
  runner.threads = 2;
  std::set<std::string> seen;
  std::size_t total_seen = 0;
  runner.on_result = [&](const ScenarioResult& row, std::size_t done,
                         std::size_t total) {
    seen.insert(row.spec.name);
    total_seen = total;
    EXPECT_LE(done, total);
  };
  const auto result = run_campaign(camp, runner);
  EXPECT_EQ(seen.size(), result.rows.size());
  EXPECT_EQ(total_seen, result.rows.size());
}

TEST(Campaign, BadScenarioIsContainedAsErrorRow) {
  CampaignSpec camp = small_campaign();
  camp.generators = {GeneratorKind::kReplay, GeneratorKind::kUniform};
  camp.formats = {DataFormat::kFixed8};
  camp.modes = {ordering::OrderingMode::kSeparated};
  camp.base.trace_path = "/nonexistent/trace.csv";
  const auto result = run_campaign(camp);
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_FALSE(result.rows[0].error.empty());  // replay fails to load
  EXPECT_TRUE(result.rows[1].error.empty());   // uniform still runs
  EXPECT_GT(result.rows[1].bt_baseline, 0u);
}

TEST(Campaign, ModelWorkloadWithoutHooksFailsCleanly) {
  CampaignSpec camp = small_campaign();
  camp.generators = {GeneratorKind::kModel};
  camp.formats = {DataFormat::kFixed8};
  camp.modes = {ordering::OrderingMode::kAffiliated};
  const auto result = run_campaign(camp);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_NE(result.rows[0].error.find("hooks"), std::string::npos)
      << result.rows[0].error;
}

TEST(Campaign, JsonReportIsWellFormedAndComplete) {
  CampaignSpec camp = small_campaign();
  camp.generators = {GeneratorKind::kUniform};
  camp.formats = {DataFormat::kFixed8};
  const auto result = run_campaign(camp);
  const std::string json = json_report(camp, result);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"campaign\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"root_seed\":\"99\""), std::string::npos);
  for (const auto& row : result.rows) {
    EXPECT_NE(json.find("\"name\":\"" + row.spec.name + "\""),
              std::string::npos);
    // Seeds are strings: 64-bit values exceed JSON's exact double range.
    EXPECT_NE(
        json.find("\"seed\":\"" + std::to_string(row.spec.seed) + "\""),
        std::string::npos);
  }
  EXPECT_NE(json.find("\"error\":null"), std::string::npos);
}

TEST(Campaign, CsvAndJsonReportsHitDisk) {
  CampaignSpec camp = small_campaign();
  camp.generators = {GeneratorKind::kUniform};
  camp.formats = {DataFormat::kFixed8};
  camp.modes = {ordering::OrderingMode::kSeparated};
  const auto result = run_campaign(camp);

  const std::string csv_path = testing::TempDir() + "nocbt_campaign_unit.csv";
  EXPECT_EQ(write_csv_report(csv_path, camp, result), result.rows.size());

  const std::string json_path = testing::TempDir() + "nocbt_campaign_unit.json";
  write_json_report(json_path, camp, result);
  std::ifstream in(json_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), json_report(camp, result) + "\n");
}

TEST(Campaign, EveryStrategyModeRunsAndAppearsInTheReportTable) {
  // The strategy-backed modes added by the ordering registry must be
  // sweepable like O0/O1/O2: every scenario completes and its mode key
  // shows up in the rendered report.
  CampaignSpec camp;
  camp.name = "strategies";
  camp.root_seed = 7;
  camp.generators = {GeneratorKind::kUniform};
  camp.formats = {DataFormat::kFixed8};
  camp.modes = {ordering::OrderingMode::kChain,
                ordering::OrderingMode::kHdChain,
                ordering::OrderingMode::kBucket,
                ordering::OrderingMode::kHybrid,
                ordering::OrderingMode::kTwoFlit};
  camp.meshes = {MeshSpec{4, 4, 2}};
  camp.windows = {16};
  camp.base.packets = 8;
  camp.base.injection_rate = 0.5;

  const CampaignResult result = run_campaign(camp, RunnerConfig{});
  ASSERT_EQ(result.rows.size(), camp.modes.size());
  for (const ScenarioResult& row : result.rows) {
    EXPECT_TRUE(row.error.empty()) << row.spec.name << ": " << row.error;
    EXPECT_TRUE(row.drained) << row.spec.name;
    EXPECT_GT(row.bt_ordered, 0u) << row.spec.name;
  }
  const std::string table = render_table(result);
  for (const ordering::OrderingMode mode : camp.modes)
    EXPECT_NE(table.find("/" + ordering::short_mode_name(mode) + "/"),
              std::string::npos)
        << "mode " << ordering::short_mode_name(mode) << " missing from table";
}

TEST(Campaign, EnergyColumnsFollowBtCounts) {
  // The measured energy/power columns are pure arithmetic over the BT
  // counts at the spec's pJ point and clock — pin the relations.
  CampaignSpec camp = small_campaign();
  camp.generators = {GeneratorKind::kUniform};
  camp.formats = {DataFormat::kFixed8};
  camp.modes = {ordering::OrderingMode::kSeparated};
  camp.base.packets = 64;
  camp.windows = {64};
  camp.base.energy_per_transition_pj = 0.5;  // easy arithmetic
  camp.base.frequency_mhz = 200.0;
  const auto result = run_campaign(camp);
  ASSERT_EQ(result.rows.size(), 1u);
  const ScenarioResult& row = result.rows[0];
  ASSERT_TRUE(row.error.empty()) << row.error;
  EXPECT_DOUBLE_EQ(row.energy_baseline_pj,
                   static_cast<double>(row.bt_baseline) * 0.5);
  EXPECT_DOUBLE_EQ(row.energy_pj, static_cast<double>(row.bt_ordered) * 0.5);
  ASSERT_GT(row.cycles, 0u);
  // P(mW) = BT * pJ * f_MHz / cycles / 1e3 (ordered run over its cycles).
  EXPECT_DOUBLE_EQ(row.power_mw, static_cast<double>(row.bt_ordered) * 0.5 *
                                     200.0 /
                                     static_cast<double>(row.cycles) / 1e3);
  EXPECT_GT(row.power_baseline_mw, 0.0);
  // Ordering reduces BT on laplace fixed-8, so energy must drop with it.
  EXPECT_LT(row.energy_pj, row.energy_baseline_pj);
}

TEST(Campaign, PerLinkRowsCoverTheMeshAndSumToScopedBt) {
  CampaignSpec camp = small_campaign();
  camp.generators = {GeneratorKind::kUniform};
  camp.formats = {DataFormat::kFixed8};
  camp.modes = {ordering::OrderingMode::kSeparated};
  const auto result = run_campaign(camp);
  ASSERT_EQ(result.rows.size(), 1u);
  const ScenarioResult& row = result.rows[0];
  ASSERT_TRUE(row.error.empty()) << row.error;

  // A 4x4 mesh taps 16 injection + 16 ejection + 48 inter-router links.
  ASSERT_EQ(row.links.size(), 16u + 16u + 48u);
  std::uint64_t scoped_bt = 0;
  std::uint64_t delivered_flits = 0;
  for (const hw::LinkEnergyRow& link : row.links) {
    EXPECT_DOUBLE_EQ(link.energy_pj,
                     static_cast<double>(link.transitions) *
                         row.spec.energy_per_transition_pj);
    if (link.info.kind != noc::LinkKind::kInjection)
      scoped_bt += link.transitions;
    if (link.info.kind == noc::LinkKind::kEjection)
      delivered_flits += link.flits;
  }
  // Default scope (inter-router + ejection) must reproduce bt_ordered.
  EXPECT_EQ(scoped_bt, row.bt_ordered);
  // Every delivered flit crossed exactly one ejection link.
  EXPECT_EQ(delivered_flits, row.flits);
}

TEST(Campaign, HeatmapCsvHitsDisk) {
  CampaignSpec camp = small_campaign();
  camp.generators = {GeneratorKind::kUniform};
  camp.formats = {DataFormat::kFixed8};
  const auto result = run_campaign(camp);
  std::size_t expected_rows = 0;
  for (const auto& row : result.rows) expected_rows += row.links.size();
  ASSERT_GT(expected_rows, 0u);

  const std::string path = testing::TempDir() + "nocbt_campaign_heatmap.csv";
  EXPECT_EQ(write_link_heatmap_csv(path, camp, result), expected_rows);
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header,
            "scenario,link_id,kind,src,dst,src_port,flits,bt,energy_pj");
  std::size_t data_lines = 0;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) ++data_lines;
  EXPECT_EQ(data_lines, expected_rows);
}

TEST(Campaign, BadEnergyKnobsAreContainedAsErrorRows) {
  CampaignSpec camp = small_campaign();
  camp.generators = {GeneratorKind::kUniform};
  camp.formats = {DataFormat::kFixed8};
  camp.modes = {ordering::OrderingMode::kBaseline};
  camp.base.energy_per_transition_pj = 0.0;
  const auto result = run_campaign(camp);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_NE(result.rows[0].error.find("energy_per_transition_pj"),
            std::string::npos)
      << result.rows[0].error;
}

TEST(Campaign, RenderTableHasOneRowPerScenario) {
  const CampaignSpec camp = small_campaign();
  const auto result = run_campaign(camp, RunnerConfig{.threads = 2});
  const std::string table = render_table(result);
  for (const auto& row : result.rows)
    EXPECT_NE(table.find(row.spec.name), std::string::npos) << row.spec.name;
}

TEST(Campaign, ProfileCsvCarriesStepLoopCounters) {
  CampaignSpec camp = small_campaign();
  camp.generators = {GeneratorKind::kUniform};
  camp.formats = {DataFormat::kFixed8};
  const auto result = run_campaign(camp);

  const std::string path = testing::TempDir() + "nocbt_campaign_profile.csv";
  EXPECT_EQ(write_profile_csv(path, camp, result), result.rows.size());
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header,
            "scenario,engine,wall_ms_baseline,wall_ms_ordered,cycles,"
            "cycles_stepped,idle_cycles_skipped,components_stepped,"
            "components_skipped,skip_ratio");
  std::size_t data_lines = 0;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) ++data_lines;
  EXPECT_EQ(data_lines, result.rows.size());

  for (const auto& row : result.rows) {
    ASSERT_TRUE(row.error.empty()) << row.error;
    // The active-set engine ran and skipped quiescent components; its
    // stepped+jumped cycles account for the scenario's whole drain time.
    EXPECT_EQ(row.spec.engine, noc::SimEngine::kActiveSet);
    EXPECT_GT(row.sim.components_skipped, 0u);
    EXPECT_EQ(row.sim.cycles_stepped + row.sim.idle_cycles_skipped,
              row.cycles);
    EXPECT_GT(row.sim.skip_ratio(), 0.0);
    EXPECT_LT(row.sim.skip_ratio(), 1.0);
  }
}

TEST(Campaign, ProfilerCountersAreThreadInvariant) {
  // Wall-clock differs run to run; the SimProfile counters must not.
  CampaignSpec camp = small_campaign();
  camp.generators = {GeneratorKind::kUniform};
  const auto serial = run_campaign(camp);
  const auto parallel = run_campaign(camp, RunnerConfig{.threads = 4});
  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    EXPECT_TRUE(serial.rows[i].sim == parallel.rows[i].sim)
        << serial.rows[i].spec.name;
    EXPECT_TRUE(serial.rows[i] == parallel.rows[i])
        << serial.rows[i].spec.name;
  }
}

}  // namespace
}  // namespace nocbt::sim
