// Tests for the content-addressed scenario cache: the hash-key domain
// (what makes two scenarios "the same measurement"), the self-checking
// record codec's exact round trip, and the store's corruption handling —
// a damaged entry must degrade to a diagnosed miss, never a wrong row.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <system_error>

#include "sim/campaign.h"
#include "sim/scenario_cache.h"

namespace nocbt::sim {
namespace {

ScenarioSpec synthetic_spec() {
  ScenarioSpec spec;
  spec.name = "unit/uniform";
  spec.generator = GeneratorKind::kUniform;
  spec.rows = 4;
  spec.cols = 4;
  spec.packets = 24;
  spec.seed = 1234;
  return spec;
}

/// A result with every serialized field exercised: link rows, awkward
/// doubles, and an error string containing the record separators.
ScenarioResult fat_result(const ScenarioSpec& spec) {
  ScenarioResult row;
  row.spec = spec;
  row.bt_baseline = 123456789;
  row.bt_ordered = 98765;
  row.reduction = 0.1;  // not exactly representable — exercises round trip
  row.energy_baseline_pj = 1e300;
  row.energy_pj = 4.9406564584124654e-324;  // smallest subnormal
  row.power_baseline_mw = -0.0;
  row.power_mw = 3.14159265358979312;
  row.cycles = 4242;
  row.packets = 24;
  row.flits = 96;
  row.peak_backlog = 7;
  row.avg_latency = 11.5;
  row.avg_hops = 2.25;
  row.drained = true;
  row.sim.engine = noc::SimEngine::kAnalytical;
  row.sim.cycles_stepped = 10;
  row.sim.idle_cycles_skipped = 20;
  row.sim.components_stepped = 30;
  row.sim.components_skipped = 40;
  row.wall_ms_baseline = 5.5;  // must NOT survive the round trip
  row.wall_ms_ordered = 6.5;
  hw::LinkEnergyRow link;
  link.link_id = 3;
  link.info.kind = noc::LinkKind::kInjection;
  link.info.src = 1;
  link.info.dst = 2;
  link.info.src_port = -1;
  link.flits = 12;
  link.transitions = 345;
  link.energy_pj = 59.685;
  row.links.push_back(link);
  link.link_id = 9;
  link.info.kind = noc::LinkKind::kInterRouter;
  row.links.push_back(link);
  row.error = "odd, error\nwith 100% separators\r";
  return row;
}

TEST(ContentKey, SyntheticScenarioIsCacheable) {
  const ContentKey key = scenario_content_key(synthetic_spec(), "");
  ASSERT_TRUE(key.cacheable) << key.why_not;
  EXPECT_EQ(key.hash.size(), 32u);
  EXPECT_TRUE(key.why_not.empty());
}

TEST(ContentKey, NameIsPresentationNotIdentity) {
  ScenarioSpec a = synthetic_spec();
  ScenarioSpec b = synthetic_spec();
  b.name = "completely/different";
  EXPECT_EQ(scenario_content_key(a, "").hash, scenario_content_key(b, "").hash);
}

TEST(ContentKey, MeasurementShapingFieldsChangeTheHash) {
  const std::string base = scenario_content_key(synthetic_spec(), "").hash;
  const auto mutated = [](auto&& mutate) {
    ScenarioSpec spec = synthetic_spec();
    mutate(spec);
    return scenario_content_key(spec, "").hash;
  };
  EXPECT_NE(mutated([](ScenarioSpec& s) { s.seed = 99; }), base);
  EXPECT_NE(mutated([](ScenarioSpec& s) { s.packets = 25; }), base);
  EXPECT_NE(mutated([](ScenarioSpec& s) {
              s.mode = ordering::OrderingMode::kAffiliated;
            }),
            base);
  EXPECT_NE(mutated([](ScenarioSpec& s) { s.rows = 8; }), base);
  EXPECT_NE(mutated([](ScenarioSpec& s) { s.window = 32; }), base);
  EXPECT_NE(mutated([](ScenarioSpec& s) {
              s.format = DataFormat::kFixed8;
            }),
            base);
  // Engine choice shapes the SimProfile counters a row carries, so it is
  // part of the identity even though BT/energy would match.
  EXPECT_NE(mutated([](ScenarioSpec& s) {
              s.engine_auto = false;
              s.engine = noc::SimEngine::kFullScan;
            }),
            base);
}

TEST(ContentKey, ModelScenariosNeedAHooksFingerprint) {
  ScenarioSpec spec = synthetic_spec();
  spec.generator = GeneratorKind::kModel;
  const ContentKey anonymous = scenario_content_key(spec, "");
  EXPECT_FALSE(anonymous.cacheable);
  EXPECT_NE(anonymous.why_not.find("ModelHooks::id"), std::string::npos)
      << anonymous.why_not;
  const ContentKey lenet = scenario_content_key(spec, "builtin-lenet-v1");
  ASSERT_TRUE(lenet.cacheable);
  const ContentKey other = scenario_content_key(spec, "builtin-other-v1");
  ASSERT_TRUE(other.cacheable);
  EXPECT_NE(lenet.hash, other.hash);
}

TEST(ContentKey, ReplayHashesTraceBytesNotThePath) {
  const std::string dir = testing::TempDir();
  const auto write = [&](const std::string& name, const std::string& body) {
    std::ofstream out(dir + name, std::ios::binary);
    out << body;
    return dir + name;
  };
  ScenarioSpec spec = synthetic_spec();
  spec.generator = GeneratorKind::kReplay;

  spec.trace_path = write("cache_trace_a.csv", "cycle,src,dst\n1,0,5\n");
  const ContentKey a = scenario_content_key(spec, "");
  ASSERT_TRUE(a.cacheable) << a.why_not;
  spec.trace_path = write("cache_trace_b.csv", "cycle,src,dst\n1,0,5\n");
  EXPECT_EQ(scenario_content_key(spec, "").hash, a.hash)
      << "same bytes at a different path must alias the same measurement";
  spec.trace_path = write("cache_trace_c.csv", "cycle,src,dst\n2,0,5\n");
  EXPECT_NE(scenario_content_key(spec, "").hash, a.hash);

  spec.trace_path = dir + "cache_trace_missing.csv";
  const ContentKey missing = scenario_content_key(spec, "");
  EXPECT_FALSE(missing.cacheable);
  EXPECT_NE(missing.why_not.find("cache_trace_missing.csv"),
            std::string::npos);
}

TEST(CampaignContentHash, PinsTheExpansion) {
  CampaignSpec camp;
  camp.generators = {GeneratorKind::kUniform};
  camp.modes = {ordering::OrderingMode::kBaseline,
                ordering::OrderingMode::kSeparated};
  camp.base.packets = 24;
  const std::string base = campaign_content_hash(camp);
  EXPECT_EQ(base.size(), 32u);
  EXPECT_EQ(campaign_content_hash(camp), base) << "must be deterministic";

  CampaignSpec seeded = camp;
  seeded.root_seed = 43;
  EXPECT_NE(campaign_content_hash(seeded), base);
  CampaignSpec heavier = camp;
  heavier.base.packets = 25;
  EXPECT_NE(campaign_content_hash(heavier), base);
  CampaignSpec wider = camp;
  wider.modes.push_back(ordering::OrderingMode::kAffiliated);
  EXPECT_NE(campaign_content_hash(wider), base);
}

TEST(ResultRecord, RoundTripsEveryFieldExactly) {
  const ScenarioSpec spec = synthetic_spec();
  const ScenarioResult row = fat_result(spec);
  const std::string hash = scenario_content_key(spec, "").hash;
  const std::string line = encode_result_record(hash, 17, row);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "one record, one line";

  DecodedRecord decoded;
  std::string error;
  ASSERT_TRUE(decode_result_record(line, decoded, error)) << error;
  EXPECT_EQ(decoded.content_hash, hash);
  EXPECT_EQ(decoded.index, 17u);
  decoded.row.spec = spec;  // the caller re-attaches the live spec
  EXPECT_TRUE(decoded.row == row)
      << "decoded row must be bit-identical (operator== covers doubles)";
  // Wall-clock is measurement overhead, not a result: it is not persisted.
  EXPECT_EQ(decoded.row.wall_ms_baseline, 0.0);
  EXPECT_EQ(decoded.row.wall_ms_ordered, 0.0);
}

TEST(ResultRecord, RejectsTruncationAndCorruption) {
  const ScenarioSpec spec = synthetic_spec();
  const std::string line =
      encode_result_record(scenario_content_key(spec, "").hash, 0,
                           fat_result(spec));
  DecodedRecord decoded;
  std::string error;
  EXPECT_FALSE(decode_result_record(line.substr(0, line.size() / 2), decoded,
                                    error));
  EXPECT_FALSE(error.empty());
  std::string flipped = line;
  flipped[10] = flipped[10] == '1' ? '2' : '1';
  EXPECT_FALSE(decode_result_record(flipped, decoded, error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  EXPECT_FALSE(decode_result_record("", decoded, error));
  EXPECT_FALSE(decode_result_record("not,a,record", decoded, error));
}

TEST(ScenarioCache, MemoryOnlyStoreServesHits) {
  const ScenarioSpec spec = synthetic_spec();
  const std::string hash = scenario_content_key(spec, "").hash;
  ScenarioCache cache;  // dir-less: the co-optimizer's default memoization
  EXPECT_FALSE(cache.lookup(spec, hash).has_value());
  cache.store(hash, fat_result(spec));
  const auto hit = cache.lookup(spec, hash);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(*hit == fat_result(spec));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.stores(), 1u);
}

TEST(ScenarioCache, DiskBackedEntriesSurviveProcessBoundaries) {
  const std::string dir = testing::TempDir() + "nocbt_cache_persist";
  const ScenarioSpec spec = synthetic_spec();
  const std::string hash = scenario_content_key(spec, "").hash;
  const ScenarioResult row = fat_result(spec);
  {
    ScenarioCache writer(dir);
    writer.store(hash, row);
  }
  ScenarioCache reader(dir);  // fresh instance = fresh memory layer
  const auto hit = reader.lookup(spec, hash);
  ASSERT_TRUE(hit.has_value());
  ScenarioResult expected = row;
  expected.wall_ms_baseline = 0.0;  // wall-clock never persists
  expected.wall_ms_ordered = 0.0;
  EXPECT_TRUE(*hit == expected);
  EXPECT_TRUE(hit->spec.name == spec.name);
}

TEST(ScenarioCache, CorruptEntryIsDiagnosedMissAndOverwritable) {
  const std::string dir = testing::TempDir() + "nocbt_cache_corrupt";
  const ScenarioSpec spec = synthetic_spec();
  const std::string hash = scenario_content_key(spec, "").hash;
  {
    ScenarioCache writer(dir);
    writer.store(hash, fat_result(spec));
  }
  // Truncate the entry mid-record — the wreckage of a killed writer on a
  // filesystem without atomic rename, or plain disk damage.
  const std::string path = dir + "/" + hash + ".row";
  {
    std::ifstream in(path, std::ios::binary);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << all.substr(0, all.size() - 20);
  }
  ScenarioCache reader(dir);
  EXPECT_FALSE(reader.lookup(spec, hash).has_value());
  const auto diags = reader.take_diagnostics();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].find(path), std::string::npos)
      << "diagnostic must name the file: " << diags[0];
  EXPECT_NE(diags[0].find("record 1"), std::string::npos)
      << "diagnostic must name the offending record: " << diags[0];
  EXPECT_TRUE(reader.take_diagnostics().empty()) << "take_ drains";
  // A store overwrites the damage and the next lookup is clean again.
  reader.store(hash, fat_result(spec));
  ScenarioCache again(dir);
  EXPECT_TRUE(again.lookup(spec, hash).has_value());
  EXPECT_TRUE(again.take_diagnostics().empty());
}

TEST(ScenarioCache, RejectsEntryStoredUnderTheWrongHash) {
  const std::string dir = testing::TempDir() + "nocbt_cache_alias";
  const ScenarioSpec spec = synthetic_spec();
  const std::string hash = scenario_content_key(spec, "").hash;
  const std::string other(32, 'f');
  {
    ScenarioCache writer(dir);
    writer.store(hash, fat_result(spec));
  }
  std::error_code ec;
  std::filesystem::copy_file(dir + "/" + hash + ".row",
                             dir + "/" + other + ".row",
                             std::filesystem::copy_options::overwrite_existing,
                             ec);
  ASSERT_FALSE(ec);
  ScenarioCache reader(dir);
  EXPECT_FALSE(reader.lookup(spec, other).has_value())
      << "an entry whose record names a different hash must not be trusted";
  const auto diags = reader.take_diagnostics();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].find(other), std::string::npos) << diags[0];
}

}  // namespace
}  // namespace nocbt::sim
