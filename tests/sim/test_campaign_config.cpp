// Tests for the shared campaign option surface (sim/campaign_config):
// key checking, the options -> spec -> text -> spec round-trip the
// co-optimizer's emitted configs rely on, the run_single_scenario vs
// run_campaign differential, and the tiles_per_layer mesh-capacity
// validation.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.h"
#include "sim/campaign.h"
#include "sim/campaign_executor.h"
#include "sim/scenario_runner.h"
#include "sim/campaign_config.h"

namespace nocbt::sim {
namespace {

/// Options from literal "key=value" arguments (argv-style).
Options make_options(std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("test"));
  for (std::string& a : args) argv.push_back(a.data());
  return Options::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CampaignConfig, UnknownKeyIsRejectedUnlessDeclaredExtra) {
  const Options opts = make_options({"packts=32"});
  EXPECT_THROW(check_campaign_keys(opts, {}), std::invalid_argument);
  EXPECT_NO_THROW(check_campaign_keys(opts, {"packts"}));
  EXPECT_NO_THROW(check_campaign_keys(make_options({"packets=32"}), {}));
}

TEST(CampaignConfig, EveryDeclaredKeyIsAccepted) {
  for (const std::string& key : campaign_option_keys())
    EXPECT_NO_THROW(check_campaign_keys(make_options({key + "=x"}), {}))
        << key;
}

TEST(CampaignConfig, UnknownKeyErrorListsEveryValidToken) {
  // The error must enumerate the accepted schema — campaign keys plus the
  // front-end's declared extras — so a typo is self-diagnosing.
  try {
    check_campaign_keys(make_options({"cashe_dir=/tmp/x"}),
                        {"cache_dir", "resume", "shard"});
    FAIL() << "expected unknown-key rejection";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("cashe_dir"), std::string::npos) << msg;
    for (const std::string& key : campaign_option_keys())
      EXPECT_NE(msg.find(key), std::string::npos) << "missing " << key;
    for (const char* extra : {"cache_dir", "resume", "shard"})
      EXPECT_NE(msg.find(extra), std::string::npos) << "missing " << extra;
  }
}

TEST(CampaignConfig, ServiceKeysParseIntoAnExecutionConfig) {
  for (const std::string& key : campaign_service_option_keys())
    EXPECT_NO_THROW(check_campaign_keys(make_options({key + "=x"}),
                                        campaign_service_option_keys()))
        << key;

  const ExecutionConfig off = execution_from_options(make_options({}));
  EXPECT_TRUE(off.cache_dir.empty());
  EXPECT_TRUE(off.journal_path.empty());
  EXPECT_EQ(off.shard.count, 1u);

  const ExecutionConfig on = execution_from_options(make_options(
      {"cache_dir=/tmp/c", "resume=/tmp/r.jnl", "shard=1/3"}));
  EXPECT_EQ(on.cache_dir, "/tmp/c");
  EXPECT_EQ(on.journal_path, "/tmp/r.jnl");
  EXPECT_EQ(on.shard.index, 1u);
  EXPECT_EQ(on.shard.count, 3u);

  EXPECT_THROW((void)execution_from_options(make_options({"shard=9/3"})),
               std::invalid_argument);
}

TEST(CampaignConfig, BuiltinHooksCarryAStableFingerprint) {
  // campaign_from_options wires the built-in lenet hooks with a pinned id
  // so model sweeps are content-addressable; ad-hoc hooks stay anonymous
  // (and therefore uncacheable) by default.
  const CampaignSpec camp = campaign_from_options(make_options({}));
  EXPECT_EQ(camp.hooks.id, "builtin-lenet-v1");
  EXPECT_TRUE(ModelHooks{}.id.empty());
}

TEST(CampaignConfig, EmittedTextReconstructsTheSameCampaign) {
  // A deliberately non-default spec on every axis and most scalars.
  const Options opts = make_options(
      {"name=rt", "seed=99", "generators=placement", "formats=fixed8",
       "modes=O2,bucket", "meshes=8x8mc4", "windows=32,64", "packets=96",
       "rate=0.125", "vcs=2", "vc_depth=8", "slots=8", "fixed_bits=6",
       "dist=normal", "dist_a=0.1", "dist_b=0.3", "model=resnet",
       "placement=snake", "tiles_per_layer=8", "model_seed=5",
       "input_seed=11", "energy_pj=banerjee", "freq_mhz=250",
       "engine=active", "max_cycles=123456"});
  const CampaignSpec original = campaign_from_options(opts);
  const std::string text = campaign_config_text(original);

  const std::string path = testing::TempDir() + "nocbt_campcfg_rt.conf";
  write_campaign_config(path, original);
  const CampaignSpec reparsed =
      campaign_from_options(Options::parse_file(path));

  // The emission is a fixed point: emitting the reparsed spec reproduces
  // the text byte for byte, so every campaign-shaping knob round-tripped.
  EXPECT_EQ(campaign_config_text(reparsed), text);

  // And the reparsed campaign expands to the same scenarios (names and
  // derived seeds included).
  const auto a = original.expand();
  const auto b = reparsed.expand();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

TEST(CampaignConfig, DefaultsRoundTripToo) {
  const CampaignSpec defaults = campaign_from_options(Options());
  const std::string path = testing::TempDir() + "nocbt_campcfg_def.conf";
  write_campaign_config(path, defaults);
  EXPECT_EQ(
      campaign_config_text(campaign_from_options(Options::parse_file(path))),
      campaign_config_text(defaults));
}

/// Single-point placement campaign used by the differential tests.
CampaignSpec single_point_campaign(const std::string& engine) {
  return campaign_from_options(make_options(
      {"generators=placement", "formats=fixed8", "modes=O2", "meshes=4x4",
       "windows=32", "model=lenet", "placement=rowmajor",
       "tiles_per_layer=4", "engine=" + engine}));
}

TEST(CampaignConfig, SingleScenarioMatchesCampaignRowOnBothEngines) {
  // The co-optimizer's inner-loop scorer must return the identical bytes a
  // full run_campaign reports for the same grid point — under auto engine
  // selection and with the cycle engine forced.
  for (const std::string engine : {"auto", "active"}) {
    SCOPED_TRACE("engine=" + engine);
    const CampaignSpec camp = single_point_campaign(engine);
    const ScenarioResult single = run_single_scenario(camp);
    const CampaignResult swept = run_campaign(camp);
    ASSERT_EQ(swept.rows.size(), 1u);
    ASSERT_TRUE(single.error.empty()) << single.error;
    EXPECT_TRUE(single == swept.rows.front());
    // Spell out the fields the optimizer ranks by, so a drift is named.
    EXPECT_EQ(single.power_mw, swept.rows.front().power_mw);
    EXPECT_EQ(single.energy_pj, swept.rows.front().energy_pj);
  }
}

TEST(CampaignConfig, RunSingleScenarioRejectsGrids) {
  CampaignSpec camp = single_point_campaign("auto");
  camp.windows = {32, 64};
  EXPECT_THROW((void)run_single_scenario(camp), std::invalid_argument);
  camp.windows = {32};
  camp.replicates = 2;
  EXPECT_THROW((void)run_single_scenario(camp), std::invalid_argument);
}

TEST(CampaignConfig, TilesPerLayerMustFitTheMeshUpFront) {
  // 4x4 mesh with 2 MCs = 14 PE tiles; 15 tiles per layer cannot fit
  // without co-locating tiles of the same op, and validate() must say so
  // naming the value, the model and the valid range.
  CampaignSpec camp = single_point_campaign("auto");
  camp.base.tiles_per_layer = 15;
  const auto scenarios = camp.expand();
  ASSERT_EQ(scenarios.size(), 1u);
  try {
    scenarios.front().validate();
    FAIL() << "expected validate() to reject tiles_per_layer=15 on 4x4mc2";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("15"), std::string::npos) << msg;
    EXPECT_NE(msg.find("lenet"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[1, 14]"), std::string::npos) << msg;
  }

  // The boundary itself is legal.
  camp.base.tiles_per_layer = 14;
  EXPECT_NO_THROW(camp.expand().front().validate());
  camp.base.tiles_per_layer = 0;
  EXPECT_THROW(camp.expand().front().validate(), std::invalid_argument);
}

}  // namespace
}  // namespace nocbt::sim
