// Tests for the scenario traffic generators: determinism, geometry of each
// pattern, timing, payload encoding, and the PacketTrace replay path.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "noc/trace.h"
#include "sim/traffic_gen.h"

namespace nocbt::sim {
namespace {

ScenarioSpec base_spec(GeneratorKind kind) {
  ScenarioSpec spec;
  spec.generator = kind;
  spec.rows = 4;
  spec.cols = 4;
  spec.format = DataFormat::kFixed8;
  spec.window = 16;
  spec.packets = 200;
  spec.injection_rate = 0.5;
  spec.seed = 77;
  return spec;
}

std::vector<InjectionRequest> drain(TrafficGenerator& gen) {
  std::vector<InjectionRequest> out;
  while (auto req = gen.next()) out.push_back(std::move(*req));
  return out;
}

TEST(TrafficGen, DeterministicForFixedSeed) {
  for (const GeneratorKind kind :
       {GeneratorKind::kUniform, GeneratorKind::kTranspose,
        GeneratorKind::kBitComplement, GeneratorKind::kHotspot,
        GeneratorKind::kBurst}) {
    const ScenarioSpec spec = base_spec(kind);
    auto a = drain(*make_generator(spec));
    auto b = drain(*make_generator(spec));
    ASSERT_EQ(a.size(), b.size()) << to_string(kind);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].cycle, b[i].cycle) << to_string(kind) << " packet " << i;
      EXPECT_EQ(a[i].src, b[i].src);
      EXPECT_EQ(a[i].dst, b[i].dst);
      EXPECT_EQ(a[i].weights, b[i].weights);
      EXPECT_EQ(a[i].inputs, b[i].inputs);
    }
  }
}

TEST(TrafficGen, SeedChangesTheStream) {
  ScenarioSpec spec = base_spec(GeneratorKind::kUniform);
  auto a = drain(*make_generator(spec));
  spec.seed = 78;
  auto b = drain(*make_generator(spec));
  ASSERT_EQ(a.size(), b.size());
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size() && !any_difference; ++i)
    any_difference = a[i].src != b[i].src || a[i].dst != b[i].dst ||
                     a[i].weights != b[i].weights;
  EXPECT_TRUE(any_difference);
}

TEST(TrafficGen, RequestShapeAndTiming) {
  const ScenarioSpec spec = base_spec(GeneratorKind::kUniform);
  const auto reqs = drain(*make_generator(spec));
  ASSERT_EQ(reqs.size(), spec.packets);
  std::uint64_t prev_cycle = 0;
  for (const auto& req : reqs) {
    EXPECT_GE(req.cycle, prev_cycle);  // non-decreasing clock
    prev_cycle = req.cycle;
    EXPECT_GE(req.src, 0);
    EXPECT_LT(req.src, 16);
    EXPECT_GE(req.dst, 0);
    EXPECT_LT(req.dst, 16);
    EXPECT_NE(req.src, req.dst);
    EXPECT_EQ(req.weights.size(), spec.window);
    EXPECT_EQ(req.inputs.size(), spec.window);
    for (const std::uint32_t pattern : req.weights)
      EXPECT_EQ(pattern >> 8, 0u) << "fixed-8 pattern wider than 8 bits";
  }
}

TEST(TrafficGen, TransposePairsNodes) {
  const auto reqs = drain(*make_generator(base_spec(GeneratorKind::kTranspose)));
  ASSERT_FALSE(reqs.empty());
  for (const auto& req : reqs) {
    const std::int32_t r = req.src / 4;
    const std::int32_t c = req.src % 4;
    EXPECT_EQ(req.dst, c * 4 + r);
    EXPECT_NE(r, c) << "diagonal nodes must stay silent";
  }
}

TEST(TrafficGen, TransposeNeedsSquareMesh) {
  ScenarioSpec spec = base_spec(GeneratorKind::kTranspose);
  spec.rows = 2;
  spec.cols = 4;
  EXPECT_THROW(make_generator(spec), std::invalid_argument);
}

TEST(TrafficGen, BitComplementMirrorsNodeIndex) {
  const auto reqs =
      drain(*make_generator(base_spec(GeneratorKind::kBitComplement)));
  ASSERT_FALSE(reqs.empty());
  for (const auto& req : reqs) EXPECT_EQ(req.dst, 15 - req.src);
}

TEST(TrafficGen, HotspotConcentratesTraffic) {
  ScenarioSpec spec = base_spec(GeneratorKind::kHotspot);
  spec.packets = 600;
  spec.hotspot_fraction = 0.5;
  const auto reqs = drain(*make_generator(spec));
  std::map<std::int32_t, int> dst_count;
  for (const auto& req : reqs) ++dst_count[req.dst];
  const std::int32_t center = 2 * 4 + 2;  // default hotspot: mesh center
  // ~50% of 600 packets target the hotspot; every other node splits the
  // rest, so the hotspot must dominate by a wide margin.
  EXPECT_GT(dst_count[center], 600 / 4);
  for (const auto& [dst, count] : dst_count) {
    if (dst != center) {
      EXPECT_LT(count, dst_count[center] / 2) << dst;
    }
  }
}

TEST(TrafficGen, HotspotHonorsExplicitNode) {
  ScenarioSpec spec = base_spec(GeneratorKind::kHotspot);
  spec.hotspot_node = 3;
  spec.hotspot_fraction = 1.0;
  const auto reqs = drain(*make_generator(spec));
  for (const auto& req : reqs) {
    EXPECT_EQ(req.dst, 3);
    EXPECT_NE(req.src, 3);
  }
}

TEST(TrafficGen, HotspotNodeOutsideMeshIsRejectedUpFront) {
  // Regression: an out-of-mesh hotspot id must be caught by validate()
  // with a message naming the value and the valid range, not surface as an
  // injection bounds error mid-campaign.
  ScenarioSpec spec = base_spec(GeneratorKind::kHotspot);
  spec.hotspot_node = 16;  // 4x4 mesh: node ids are [0, 15]
  try {
    auto gen = make_generator(spec);
    FAIL() << "out-of-mesh hotspot_node was accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("hotspot_node 16"), std::string::npos) << msg;
    EXPECT_NE(msg.find("4x4"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[0, 15]"), std::string::npos) << msg;
  }
  spec.hotspot_node = -2;
  EXPECT_THROW(make_generator(spec), std::invalid_argument);
  spec.hotspot_node = 15;  // boundary id stays valid
  EXPECT_NO_THROW(make_generator(spec));
}

TEST(TrafficGen, BurstClustersInjections) {
  ScenarioSpec spec = base_spec(GeneratorKind::kBurst);
  spec.packets = 40;
  spec.burst_len = 8;
  spec.burst_gap = 100;
  const auto reqs = drain(*make_generator(spec));
  ASSERT_EQ(reqs.size(), 40u);
  // Packets 0..7 sit one cycle apart, then a >= burst_gap jump, repeating.
  for (std::size_t i = 1; i < reqs.size(); ++i) {
    const std::uint64_t gap = reqs[i].cycle - reqs[i - 1].cycle;
    if (i % 8 == 0)
      EXPECT_GE(gap, 100u) << "packet " << i;
    else
      EXPECT_EQ(gap, 1u) << "packet " << i;
  }
}

TEST(TrafficGen, ReplayFollowsTheTrace) {
  const std::string path = testing::TempDir() + "nocbt_replay_gen.csv";
  noc::PacketTrace trace;
  for (std::uint64_t id = 0; id < 6; ++id) {
    noc::TraceEvent e;
    e.packet_id = id;
    e.src = static_cast<std::int32_t>(id);
    e.dst = static_cast<std::int32_t>(15 - id);
    e.num_flits = static_cast<std::uint32_t>(1 + id % 3);
    e.inject_cycle = 50 - id * 5;  // deliberately unsorted
    e.eject_cycle = e.inject_cycle + 9;
    e.hops = 2;
    trace.record(e);
  }
  trace.dump_csv(path);

  ScenarioSpec spec = base_spec(GeneratorKind::kReplay);
  spec.trace_path = path;
  const auto reqs = drain(*make_generator(spec));
  ASSERT_EQ(reqs.size(), 6u);
  std::uint64_t prev = 0;
  for (const auto& req : reqs) {
    EXPECT_GE(req.cycle, prev);  // generator re-sorts by inject cycle
    prev = req.cycle;
    // half-half packing: pairs per packet = num_flits * (slots / 2)
    EXPECT_EQ(req.weights.size() % (spec.values_per_flit / 2), 0u);
  }
  EXPECT_EQ(reqs.front().src, 5);  // earliest inject_cycle came last in file
}

TEST(TrafficGen, ReplayRejectsTraceOutsideMesh) {
  const std::string path = testing::TempDir() + "nocbt_replay_oob.csv";
  noc::PacketTrace trace;
  noc::TraceEvent e;
  e.packet_id = 0;
  e.src = 0;
  e.dst = 63;  // valid in 8x8, not in 4x4
  e.num_flits = 1;
  e.inject_cycle = 0;
  e.eject_cycle = 5;
  e.hops = 1;
  trace.record(e);
  trace.dump_csv(path);

  ScenarioSpec spec = base_spec(GeneratorKind::kReplay);
  spec.trace_path = path;
  EXPECT_THROW(make_generator(spec), std::invalid_argument);
}

TEST(TrafficGen, ReplayRequiresTracePath) {
  EXPECT_THROW(make_generator(base_spec(GeneratorKind::kReplay)),
               std::invalid_argument);
}

TEST(TrafficGen, ModelIsNotASyntheticGenerator) {
  EXPECT_THROW(make_generator(base_spec(GeneratorKind::kModel)),
               std::invalid_argument);
}

TEST(TrafficGen, Float32PatternsUseFullWidth) {
  ScenarioSpec spec = base_spec(GeneratorKind::kUniform);
  spec.format = DataFormat::kFloat32;
  spec.packets = 4;
  const auto reqs = drain(*make_generator(spec));
  bool any_high_bits = false;
  for (const auto& req : reqs)
    for (const std::uint32_t pattern : req.weights)
      any_high_bits = any_high_bits || (pattern >> 8) != 0;
  EXPECT_TRUE(any_high_bits);  // IEEE-754 exponents live above bit 8
}

TEST(TrafficGen, NameRoundTrip) {
  for (const GeneratorKind kind :
       {GeneratorKind::kUniform, GeneratorKind::kTranspose,
        GeneratorKind::kBitComplement, GeneratorKind::kHotspot,
        GeneratorKind::kBurst, GeneratorKind::kReplay, GeneratorKind::kModel})
    EXPECT_EQ(parse_generator_kind(to_string(kind)), kind);
  EXPECT_THROW((void)parse_generator_kind("warp-drive"), std::invalid_argument);
}

}  // namespace
}  // namespace nocbt::sim
