// Table-driven parse/to_string round-trip coverage for every enum pair in
// noc/noc_config.h and sim/scenario.h. New enum values added without
// updating the parser (or vice versa) fail here instead of surfacing as a
// confusing CLI error; the suites also pin that every parser's error
// message enumerates the valid spellings, so a typo at the command line
// tells the user what would have worked.

#include <gtest/gtest.h>

#include <initializer_list>
#include <stdexcept>
#include <string>

#include "noc/noc_config.h"
#include "sim/scenario.h"

namespace nocbt {
namespace {

/// Run `parse` on junk and return the exception message.
template <typename Parse>
std::string error_message(Parse parse) {
  try {
    (void)parse("definitely-not-a-value");
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  ADD_FAILURE() << "parser accepted junk";
  return {};
}

void expect_mentions_all(const std::string& message,
                         std::initializer_list<const char*> tokens) {
  for (const char* token : tokens)
    EXPECT_NE(message.find(token), std::string::npos)
        << "error message '" << message << "' does not mention '" << token
        << "'";
}

TEST(EnumRoundTrip, SimEngine) {
  for (const noc::SimEngine engine :
       {noc::SimEngine::kActiveSet, noc::SimEngine::kFullScan,
        noc::SimEngine::kAnalytical})
    EXPECT_EQ(noc::parse_sim_engine(noc::to_string(engine)), engine)
        << noc::to_string(engine);
  expect_mentions_all(error_message(noc::parse_sim_engine),
                      {"active", "fullscan", "analytical"});
}

TEST(EnumRoundTrip, GeneratorKind) {
  for (const sim::GeneratorKind kind :
       {sim::GeneratorKind::kUniform, sim::GeneratorKind::kTranspose,
        sim::GeneratorKind::kBitComplement, sim::GeneratorKind::kHotspot,
        sim::GeneratorKind::kBurst, sim::GeneratorKind::kReplay,
        sim::GeneratorKind::kModel})
    EXPECT_EQ(sim::parse_generator_kind(sim::to_string(kind)), kind)
        << sim::to_string(kind);
  expect_mentions_all(error_message(sim::parse_generator_kind),
                      {"uniform", "transpose", "bitcomp", "hotspot", "burst",
                       "replay", "model"});
}

TEST(EnumRoundTrip, ValueDist) {
  for (const sim::ValueDist dist :
       {sim::ValueDist::kUniform, sim::ValueDist::kNormal,
        sim::ValueDist::kLaplace})
    EXPECT_EQ(sim::parse_value_dist(sim::to_string(dist)), dist)
        << sim::to_string(dist);
  expect_mentions_all(error_message(sim::parse_value_dist),
                      {"uniform", "normal", "laplace"});
}

TEST(EnumRoundTrip, EngineChoice) {
  // "auto" plus every backend, through the campaign-level selector.
  for (const char* name : {"auto", "active", "fullscan", "analytical"}) {
    const sim::EngineChoice choice = sim::parse_engine_choice(name);
    EXPECT_EQ(sim::to_string(choice), name);
    EXPECT_EQ(sim::parse_engine_choice(sim::to_string(choice)), choice);
  }
  EXPECT_TRUE(sim::parse_engine_choice("auto").auto_select);
  EXPECT_FALSE(sim::parse_engine_choice("analytical").auto_select);
  expect_mentions_all(error_message(sim::parse_engine_choice),
                      {"auto", "active", "fullscan", "analytical"});
}

TEST(EnumRoundTrip, ApplyEngineChoice) {
  sim::ScenarioSpec spec;
  sim::apply_engine_choice(spec, sim::parse_engine_choice("analytical"));
  EXPECT_FALSE(spec.engine_auto);
  EXPECT_EQ(spec.engine, noc::SimEngine::kAnalytical);
  sim::apply_engine_choice(spec, sim::parse_engine_choice("auto"));
  EXPECT_TRUE(spec.engine_auto);
  // auto keeps the previous engine as the cycle fallback... except an
  // unsteppable analytical fallback, which the runner maps to active-set.
  sim::apply_engine_choice(spec, sim::parse_engine_choice("fullscan"));
  EXPECT_FALSE(spec.engine_auto);
  EXPECT_EQ(spec.engine, noc::SimEngine::kFullScan);
}

}  // namespace
}  // namespace nocbt
