// Cross-engine equivalence at the campaign level: for every traffic
// generator the engine supports (and the full-model accelerator workload),
// run_scenario under the active-set engine must produce the same
// deterministic measurements as under the retained full-scan reference —
// BT counts, drain cycles, delivered packets/flits, latency/hops
// accumulators, energy numbers and the per-link snapshot. The synthetic
// path drives advance_idle interleavings internally (the campaign runner
// jumps idle gaps), so sparse generators double as clock-jump coverage.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "dnn/models.h"
#include "dnn/synthetic_data.h"
#include "noc/trace.h"
#include "sim/campaign.h"

namespace nocbt::sim {
namespace {

ModelHooks lenet_hooks() {
  ModelHooks hooks;
  hooks.model = [](std::uint64_t seed) {
    Rng rng(seed);
    dnn::Sequential model = dnn::build_lenet(rng);
    Rng fill_rng(seed + 1);
    dnn::fill_weights_trained_like(model, fill_rng, 0.04);
    return model;
  };
  hooks.input = [](std::uint64_t seed) {
    dnn::SyntheticDataset data(dnn::SyntheticDataset::Config{}, seed);
    return data.sample(1).images;
  };
  return hooks;
}

/// Compare every deterministic field of two scenario results. The
/// step-loop profile is engine-specific (that is the point of the engine)
/// and wall-clock is nondeterministic, so neither is compared.
void expect_equivalent(const ScenarioResult& active,
                       const ScenarioResult& full) {
  ASSERT_EQ(active.error, full.error);
  EXPECT_EQ(active.bt_baseline, full.bt_baseline);
  EXPECT_EQ(active.bt_ordered, full.bt_ordered);
  EXPECT_EQ(active.reduction, full.reduction);
  EXPECT_EQ(active.energy_baseline_pj, full.energy_baseline_pj);
  EXPECT_EQ(active.energy_pj, full.energy_pj);
  EXPECT_EQ(active.power_baseline_mw, full.power_baseline_mw);
  EXPECT_EQ(active.power_mw, full.power_mw);
  EXPECT_EQ(active.cycles, full.cycles);
  EXPECT_EQ(active.packets, full.packets);
  EXPECT_EQ(active.flits, full.flits);
  EXPECT_EQ(active.peak_backlog, full.peak_backlog);
  EXPECT_EQ(active.avg_latency, full.avg_latency);
  EXPECT_EQ(active.avg_hops, full.avg_hops);
  EXPECT_EQ(active.drained, full.drained);
  EXPECT_EQ(active.links, full.links);
  // Both engines simulate the same schedule: same stepped and jumped
  // cycles, even though the per-cycle component work differs.
  EXPECT_EQ(active.sim.cycles_stepped, full.sim.cycles_stepped);
  EXPECT_EQ(active.sim.idle_cycles_skipped, full.sim.idle_cycles_skipped);
  EXPECT_EQ(full.sim.components_skipped, 0u);
}

ScenarioSpec base_spec(GeneratorKind gen, std::int32_t rows,
                       std::int32_t cols) {
  ScenarioSpec spec;
  spec.name = "equiv";
  spec.generator = gen;
  spec.rows = rows;
  spec.cols = cols;
  spec.format = DataFormat::kFixed8;
  spec.mode = ordering::OrderingMode::kSeparated;
  spec.window = 32;
  spec.packets = 48;
  spec.injection_rate = 0.2;  // sparse: exercises advance_idle jumps
  spec.seed = 20260726;
  return spec;
}

void run_cross_engine(ScenarioSpec spec, const ModelHooks& hooks) {
  spec.engine = noc::SimEngine::kActiveSet;
  const ScenarioResult active = run_scenario(spec, hooks);
  spec.engine = noc::SimEngine::kFullScan;
  const ScenarioResult full = run_scenario(spec, hooks);
  ASSERT_TRUE(active.error.empty()) << active.error;
  expect_equivalent(active, full);
  // The sparse schedules here leave most of the mesh quiescent; the
  // active-set engine must actually be skipping work, not just agreeing.
  EXPECT_GT(active.sim.components_skipped, 0u);
}

class GeneratorEquivalence : public ::testing::TestWithParam<GeneratorKind> {};

TEST_P(GeneratorEquivalence, ActiveSetMatchesFullScan4x4) {
  run_cross_engine(base_spec(GetParam(), 4, 4), ModelHooks{});
}

TEST_P(GeneratorEquivalence, ActiveSetMatchesFullScan6x3) {
  // Non-square mesh (transpose requires square, so it is skipped here).
  if (GetParam() == GeneratorKind::kTranspose) GTEST_SKIP();
  run_cross_engine(base_spec(GetParam(), 6, 3), ModelHooks{});
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorEquivalence,
    ::testing::Values(GeneratorKind::kUniform, GeneratorKind::kTranspose,
                      GeneratorKind::kBitComplement, GeneratorKind::kHotspot,
                      GeneratorKind::kBurst),
    [](const auto& info) { return to_string(info.param); });

TEST(GeneratorEquivalenceReplay, ActiveSetMatchesFullScan) {
  // Replay a synthetic recorded trace (including a self-delivered packet
  // and a long idle gap) through both engines.
  noc::PacketTrace trace;
  trace.record({1, 0, 15, 3, 0, 14, 6});
  trace.record({2, 5, 5, 2, 4, 9, 0});
  trace.record({3, 12, 3, 1, 900, 911, 5});
  trace.record({4, 7, 8, 4, 903, 912, 1});
  const std::string path =
      ::testing::TempDir() + "/engine_equivalence_trace.csv";
  ASSERT_EQ(trace.dump_csv(path), 4u);

  ScenarioSpec spec = base_spec(GeneratorKind::kReplay, 4, 4);
  spec.trace_path = path;
  run_cross_engine(spec, ModelHooks{});
}

TEST(GeneratorEquivalenceModel, LenetInferenceMatchesFullScan) {
  // Full accelerator inference (NocDnaPlatform) on both engines: sinks
  // inject result packets from inside delivery callbacks, multiple MCs
  // stream concurrently, and the final drain runs through the config knob.
  ScenarioSpec spec = base_spec(GeneratorKind::kModel, 4, 4);
  spec.num_mcs = 2;
  run_cross_engine(spec, lenet_hooks());
}

}  // namespace
}  // namespace nocbt::sim
