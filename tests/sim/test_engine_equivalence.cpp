// Cross-engine equivalence at the campaign level: for every traffic
// generator the engine supports (and the full-model accelerator workload),
// run_scenario under the active-set engine must produce the same
// deterministic measurements as under the retained full-scan reference —
// BT counts, drain cycles, delivered packets/flits, latency/hops
// accumulators, energy numbers and the per-link snapshot. The synthetic
// path drives advance_idle interleavings internally (the campaign runner
// jumps idle gaps), so sparse generators double as clock-jump coverage.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "dnn/models.h"
#include "dnn/synthetic_data.h"
#include "noc/trace.h"
#include "sim/campaign.h"
#include "sim/scenario_runner.h"

namespace nocbt::sim {
namespace {

ModelHooks lenet_hooks() {
  ModelHooks hooks;
  hooks.model = [](std::uint64_t seed) {
    Rng rng(seed);
    dnn::Sequential model = dnn::build_lenet(rng);
    Rng fill_rng(seed + 1);
    dnn::fill_weights_trained_like(model, fill_rng, 0.04);
    return model;
  };
  hooks.input = [](std::uint64_t seed) {
    dnn::SyntheticDataset data(dnn::SyntheticDataset::Config{}, seed);
    return data.sample(1).images;
  };
  return hooks;
}

/// Compare every deterministic field of two scenario results. The
/// step-loop profile is engine-specific (that is the point of the engine)
/// and wall-clock is nondeterministic, so neither is compared.
void expect_equivalent(const ScenarioResult& active,
                       const ScenarioResult& full) {
  ASSERT_EQ(active.error, full.error);
  EXPECT_EQ(active.bt_baseline, full.bt_baseline);
  EXPECT_EQ(active.bt_ordered, full.bt_ordered);
  EXPECT_EQ(active.reduction, full.reduction);
  EXPECT_EQ(active.energy_baseline_pj, full.energy_baseline_pj);
  EXPECT_EQ(active.energy_pj, full.energy_pj);
  EXPECT_EQ(active.power_baseline_mw, full.power_baseline_mw);
  EXPECT_EQ(active.power_mw, full.power_mw);
  EXPECT_EQ(active.cycles, full.cycles);
  EXPECT_EQ(active.packets, full.packets);
  EXPECT_EQ(active.flits, full.flits);
  EXPECT_EQ(active.peak_backlog, full.peak_backlog);
  EXPECT_EQ(active.avg_latency, full.avg_latency);
  EXPECT_EQ(active.avg_hops, full.avg_hops);
  EXPECT_EQ(active.drained, full.drained);
  EXPECT_EQ(active.links, full.links);
  // Both engines simulate the same schedule: same stepped and jumped
  // cycles, even though the per-cycle component work differs.
  EXPECT_EQ(active.sim.cycles_stepped, full.sim.cycles_stepped);
  EXPECT_EQ(active.sim.idle_cycles_skipped, full.sim.idle_cycles_skipped);
  EXPECT_EQ(full.sim.components_skipped, 0u);
}

ScenarioSpec base_spec(GeneratorKind gen, std::int32_t rows,
                       std::int32_t cols) {
  ScenarioSpec spec;
  spec.name = "equiv";
  spec.generator = gen;
  spec.rows = rows;
  spec.cols = cols;
  spec.format = DataFormat::kFixed8;
  spec.mode = ordering::OrderingMode::kSeparated;
  spec.window = 32;
  spec.packets = 48;
  spec.injection_rate = 0.2;  // sparse: exercises advance_idle jumps
  spec.seed = 20260726;
  return spec;
}

void run_cross_engine(ScenarioSpec spec, const ModelHooks& hooks) {
  spec.engine_auto = false;  // this suite pins the two *cycle* engines
  spec.engine = noc::SimEngine::kActiveSet;
  const ScenarioResult active = run_scenario(spec, hooks);
  spec.engine = noc::SimEngine::kFullScan;
  const ScenarioResult full = run_scenario(spec, hooks);
  ASSERT_TRUE(active.error.empty()) << active.error;
  expect_equivalent(active, full);
  // The sparse schedules here leave most of the mesh quiescent; the
  // active-set engine must actually be skipping work, not just agreeing.
  EXPECT_GT(active.sim.components_skipped, 0u);
}

class GeneratorEquivalence : public ::testing::TestWithParam<GeneratorKind> {};

TEST_P(GeneratorEquivalence, ActiveSetMatchesFullScan4x4) {
  run_cross_engine(base_spec(GetParam(), 4, 4), ModelHooks{});
}

TEST_P(GeneratorEquivalence, ActiveSetMatchesFullScan6x3) {
  // Non-square mesh (transpose requires square, so it is skipped here).
  if (GetParam() == GeneratorKind::kTranspose) GTEST_SKIP();
  run_cross_engine(base_spec(GetParam(), 6, 3), ModelHooks{});
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorEquivalence,
    ::testing::Values(GeneratorKind::kUniform, GeneratorKind::kTranspose,
                      GeneratorKind::kBitComplement, GeneratorKind::kHotspot,
                      GeneratorKind::kBurst),
    [](const auto& info) { return to_string(info.param); });

TEST(GeneratorEquivalenceReplay, ActiveSetMatchesFullScan) {
  // Replay a synthetic recorded trace (including a self-delivered packet
  // and a long idle gap) through both engines.
  noc::PacketTrace trace;
  trace.record({1, 0, 15, 3, 0, 14, 6, {}, {}});
  trace.record({2, 5, 5, 2, 4, 9, 0, {}, {}});
  trace.record({3, 12, 3, 1, 900, 911, 5, {}, {}});
  trace.record({4, 7, 8, 4, 903, 912, 1, {}, {}});
  const std::string path =
      ::testing::TempDir() + "/engine_equivalence_trace.csv";
  ASSERT_EQ(trace.dump_csv(path), 4u);

  ScenarioSpec spec = base_spec(GeneratorKind::kReplay, 4, 4);
  spec.trace_path = path;
  run_cross_engine(spec, ModelHooks{});
}

// ---- analytical backend ------------------------------------------------

/// Everything the reports are built from must match between the analytical
/// and a cycle engine: BT/energy/power columns, cycles, transport stats,
/// per-link rows. Step-loop counters are backend-specific by design (the
/// analytical engine steps nothing) so `sim` is compared field-by-field
/// where meaningful instead.
void expect_equivalent_transport(const ScenarioResult& ana,
                                 const ScenarioResult& cyc) {
  ASSERT_EQ(ana.error, cyc.error);
  EXPECT_EQ(ana.bt_baseline, cyc.bt_baseline);
  EXPECT_EQ(ana.bt_ordered, cyc.bt_ordered);
  EXPECT_EQ(ana.reduction, cyc.reduction);
  EXPECT_EQ(ana.energy_baseline_pj, cyc.energy_baseline_pj);
  EXPECT_EQ(ana.energy_pj, cyc.energy_pj);
  EXPECT_EQ(ana.power_baseline_mw, cyc.power_baseline_mw);
  EXPECT_EQ(ana.power_mw, cyc.power_mw);
  EXPECT_EQ(ana.cycles, cyc.cycles);
  EXPECT_EQ(ana.packets, cyc.packets);
  EXPECT_EQ(ana.flits, cyc.flits);
  EXPECT_EQ(ana.peak_backlog, cyc.peak_backlog);
  EXPECT_EQ(ana.avg_latency, cyc.avg_latency);
  EXPECT_EQ(ana.avg_hops, cyc.avg_hops);
  EXPECT_EQ(ana.drained, cyc.drained);
  EXPECT_EQ(ana.links, cyc.links);
}

ScenarioResult run_forced(ScenarioSpec spec, noc::SimEngine engine) {
  spec.engine_auto = false;
  spec.engine = engine;
  return run_scenario(spec, ModelHooks{});
}

/// A spec sparse enough that its schedule is congestion-free (each test
/// asserts that by checking the analytical backend accepted it, so a
/// drifted generator cannot silently weaken this suite into comparing an
/// approximation).
ScenarioSpec sparse_spec(GeneratorKind gen, std::int32_t rows,
                         std::int32_t cols, DataFormat format,
                         std::uint32_t window) {
  ScenarioSpec spec = base_spec(gen, rows, cols);
  spec.format = format;
  spec.window = window;
  spec.packets = 24;
  // Mean 5000-cycle gaps: zero-load traffic for every generator at this
  // pinned seed (the tests assert the analytical backend *proved* that,
  // so a drift here fails loudly rather than weakening the comparison).
  spec.injection_rate = 2e-4;
  spec.burst_len = 1;          // kBurst: single-packet bursts, long gaps
  spec.burst_gap = 300;
  return spec;
}

class AnalyticalEquivalence : public ::testing::TestWithParam<GeneratorKind> {
};

TEST_P(AnalyticalEquivalence, MatchesActiveSetByteForByte) {
  for (const auto& [rows, cols] : {std::pair<std::int32_t, std::int32_t>{4, 4},
                                   {6, 3}}) {
    if (GetParam() == GeneratorKind::kTranspose && rows != cols) continue;
    for (const DataFormat format : {DataFormat::kFixed8, DataFormat::kFloat32})
      for (const std::uint32_t window : {8u, 32u}) {
        const ScenarioSpec spec =
            sparse_spec(GetParam(), rows, cols, format, window);
        const ScenarioResult ana =
            run_forced(spec, noc::SimEngine::kAnalytical);
        ASSERT_TRUE(ana.error.empty())
            << rows << "x" << cols << " w" << window << ": " << ana.error;
        ASSERT_EQ(ana.sim.engine, noc::SimEngine::kAnalytical);
        EXPECT_EQ(ana.sim.cycles_stepped, 0u);
        const ScenarioResult active =
            run_forced(spec, noc::SimEngine::kActiveSet);
        EXPECT_EQ(active.sim.engine, noc::SimEngine::kActiveSet);
        expect_equivalent_transport(ana, active);
      }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, AnalyticalEquivalence,
    ::testing::Values(GeneratorKind::kUniform, GeneratorKind::kTranspose,
                      GeneratorKind::kBitComplement, GeneratorKind::kHotspot,
                      GeneratorKind::kBurst),
    [](const auto& info) { return to_string(info.param); });

TEST(AnalyticalEquivalenceReplay, MatchesActiveSet) {
  noc::PacketTrace trace;
  trace.record({1, 0, 15, 3, 0, 14, 6, {}, {}});
  trace.record({2, 5, 5, 2, 60, 65, 0, {}, {}});  // self-delivered
  trace.record({3, 12, 3, 1, 900, 911, 5, {}, {}});
  trace.record({4, 7, 8, 4, 960, 972, 1, {}, {}});
  const std::string path =
      ::testing::TempDir() + "/analytical_equivalence_trace.csv";
  ASSERT_EQ(trace.dump_csv(path), 4u);

  ScenarioSpec spec = base_spec(GeneratorKind::kReplay, 4, 4);
  spec.trace_path = path;
  const ScenarioResult ana = run_forced(spec, noc::SimEngine::kAnalytical);
  ASSERT_TRUE(ana.error.empty()) << ana.error;
  ASSERT_EQ(ana.sim.engine, noc::SimEngine::kAnalytical);
  expect_equivalent_transport(ana, run_forced(spec, noc::SimEngine::kActiveSet));
}

TEST(EngineAutoSelect, PicksAnalyticalWhenCongestionFree) {
  ScenarioSpec spec =
      sparse_spec(GeneratorKind::kUniform, 4, 4, DataFormat::kFixed8, 32);
  ASSERT_TRUE(spec.engine_auto);  // the default policy
  const ScenarioResult autosel = run_scenario(spec, ModelHooks{});
  ASSERT_TRUE(autosel.error.empty()) << autosel.error;
  EXPECT_EQ(autosel.sim.engine, noc::SimEngine::kAnalytical);
  // Auto-selection is result-invisible: identical to forcing analytical.
  EXPECT_TRUE(autosel == run_forced(spec, noc::SimEngine::kAnalytical));
}

TEST(EngineAutoSelect, FallsBackToCycleEngineUnderContention) {
  ScenarioSpec spec = base_spec(GeneratorKind::kUniform, 4, 4);
  spec.injection_rate = 2.0;  // saturating: schedules overlap heavily
  spec.packets = 64;
  const ScenarioResult autosel = run_scenario(spec, ModelHooks{});
  ASSERT_TRUE(autosel.error.empty()) << autosel.error;
  EXPECT_EQ(autosel.sim.engine, noc::SimEngine::kActiveSet);
  EXPECT_GT(autosel.sim.cycles_stepped, 0u);
  EXPECT_TRUE(autosel == run_forced(spec, noc::SimEngine::kActiveSet));
  // The fallback honors the spec's cycle engine choice.
  ScenarioSpec full = spec;
  full.engine = noc::SimEngine::kFullScan;
  const ScenarioResult fs = run_scenario(full, ModelHooks{});
  EXPECT_EQ(fs.sim.engine, noc::SimEngine::kFullScan);
}

TEST(EngineAutoSelect, ForcedAnalyticalFailsLoudlyUnderContention) {
  ScenarioSpec spec = base_spec(GeneratorKind::kUniform, 4, 4);
  spec.injection_rate = 2.0;
  spec.packets = 64;
  const ScenarioResult forced = run_forced(spec, noc::SimEngine::kAnalytical);
  ASSERT_FALSE(forced.error.empty());
  EXPECT_NE(forced.error.find("engine=analytical"), std::string::npos)
      << forced.error;
  EXPECT_NE(forced.error.find("congestion-free"), std::string::npos)
      << forced.error;
}

TEST(EngineAutoSelect, ForcedAnalyticalRejectsModelWorkloads) {
  ScenarioSpec spec = base_spec(GeneratorKind::kModel, 4, 4);
  spec.engine_auto = false;
  spec.engine = noc::SimEngine::kAnalytical;
  const ScenarioResult result = run_scenario(spec, lenet_hooks());
  ASSERT_FALSE(result.error.empty());
  EXPECT_NE(result.error.find("cycle engine"), std::string::npos)
      << result.error;
}

TEST(GeneratorEquivalenceModel, LenetInferenceMatchesFullScan) {
  // Full accelerator inference (NocDnaPlatform) on both engines: sinks
  // inject result packets from inside delivery callbacks, multiple MCs
  // stream concurrently, and the final drain runs through the config knob.
  ScenarioSpec spec = base_spec(GeneratorKind::kModel, 4, 4);
  spec.num_mcs = 2;
  run_cross_engine(spec, lenet_hooks());
}

}  // namespace
}  // namespace nocbt::sim
