// Placement traffic through the campaign runner: spec validation, schedule
// recording determinism, and the dump/replay contract — a placed workload
// written to a PacketTrace and replayed must reproduce the directly-placed
// run's measurements exactly, on both the cycle engine and (for a
// congestion-free single-PE placement) the analytical backend.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "noc/trace.h"
#include "sim/campaign.h"
#include "sim/scenario_runner.h"
#include "sim/traffic_gen.h"

namespace nocbt::sim {
namespace {

ScenarioSpec placed_spec() {
  ScenarioSpec spec;
  spec.name = "placed";
  spec.generator = GeneratorKind::kPlacement;
  spec.model = "lenet";
  spec.placement = "rowmajor";
  spec.tiles_per_layer = 2;
  spec.rows = 4;
  spec.cols = 4;
  spec.num_mcs = 2;
  spec.format = DataFormat::kFixed8;
  spec.mode = ordering::OrderingMode::kSeparated;
  spec.window = 32;
  spec.seed = 99;
  spec.model_seed = 5;
  spec.engine_auto = false;
  spec.engine = noc::SimEngine::kActiveSet;
  return spec;
}

/// Every deterministic measurement of two runs must agree; the step-loop
/// profile and wall-clock are engine/host specific and excluded.
void expect_same_measurements(const ScenarioResult& a,
                              const ScenarioResult& b) {
  ASSERT_EQ(a.error, b.error);
  EXPECT_EQ(a.bt_baseline, b.bt_baseline);
  EXPECT_EQ(a.bt_ordered, b.bt_ordered);
  EXPECT_EQ(a.reduction, b.reduction);
  EXPECT_EQ(a.energy_baseline_pj, b.energy_baseline_pj);
  EXPECT_EQ(a.energy_pj, b.energy_pj);
  EXPECT_EQ(a.power_baseline_mw, b.power_baseline_mw);
  EXPECT_EQ(a.power_mw, b.power_mw);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.flits, b.flits);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.links, b.links);
}

TEST(PlacementSpec, ValidateGatesThePlacementKnobs) {
  ScenarioSpec good = placed_spec();
  EXPECT_NO_THROW(good.validate());

  ScenarioSpec bad_model = placed_spec();
  bad_model.model = "vgg";
  EXPECT_THROW(bad_model.validate(), std::invalid_argument);

  ScenarioSpec bad_policy = placed_spec();
  bad_policy.placement = "zigzag";
  EXPECT_THROW(bad_policy.validate(), std::invalid_argument);

  ScenarioSpec bad_tiles = placed_spec();
  bad_tiles.tiles_per_layer = 0;
  EXPECT_THROW(bad_tiles.validate(), std::invalid_argument);

  // All-MC meshes leave no PE to place tiles on.
  ScenarioSpec bad_mcs = placed_spec();
  bad_mcs.num_mcs = bad_mcs.rows * bad_mcs.cols;
  EXPECT_THROW(bad_mcs.validate(), std::invalid_argument);
}

TEST(PlacementTraffic, RecordedScheduleIsDeterministicAndCarriesPayloads) {
  const ScenarioSpec spec = placed_spec();
  const noc::PacketTrace a = record_schedule(spec);
  const noc::PacketTrace b = record_schedule(spec);
  ASSERT_GT(a.size(), 0u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const noc::TraceEvent& ea = a.events()[i];
    const noc::TraceEvent& eb = b.events()[i];
    EXPECT_TRUE(ea.has_payload()) << i;
    EXPECT_EQ(ea.src, eb.src);
    EXPECT_EQ(ea.dst, eb.dst);
    EXPECT_EQ(ea.inject_cycle, eb.inject_cycle);
    EXPECT_EQ(ea.num_flits, eb.num_flits);
    EXPECT_EQ(ea.weights, eb.weights);
    EXPECT_EQ(ea.inputs, eb.inputs);
  }
}

TEST(PlacementTraffic, ReplayedTraceMatchesTheDirectRunOnTheCycleEngine) {
  const ScenarioSpec direct_spec = placed_spec();
  const ScenarioResult direct = run_scenario(direct_spec, ModelHooks{});
  ASSERT_TRUE(direct.error.empty()) << direct.error;
  ASSERT_GT(direct.bt_baseline, 0u);
  // The ordering must actually bite, or "equal BT" would be vacuous.
  ASSERT_LT(direct.bt_ordered, direct.bt_baseline);

  const std::string path =
      testing::TempDir() + "nocbt_placed_replay_active.csv";
  const noc::PacketTrace trace = record_schedule(direct_spec);
  ASSERT_EQ(trace.dump_csv(path), trace.size());
  EXPECT_EQ(direct.packets, trace.size());

  ScenarioSpec replay_spec = direct_spec;
  replay_spec.generator = GeneratorKind::kReplay;
  replay_spec.trace_path = path;
  const ScenarioResult replayed = run_scenario(replay_spec, ModelHooks{});
  ASSERT_TRUE(replayed.error.empty()) << replayed.error;
  expect_same_measurements(direct, replayed);
}

TEST(PlacementTraffic, ReplayedTraceMatchesTheDirectRunOnTheAnalyticalEngine) {
  // A single-PE chain placement serializes every source, so the schedule
  // is provably congestion-free and the forced analytical backend must
  // accept it — for the direct run and for its recorded replay alike.
  ScenarioSpec direct_spec = placed_spec();
  direct_spec.rows = 1;
  direct_spec.cols = 2;
  direct_spec.num_mcs = 1;
  direct_spec.tiles_per_layer = 1;
  direct_spec.engine_auto = false;
  direct_spec.engine = noc::SimEngine::kAnalytical;
  const ScenarioResult direct = run_scenario(direct_spec, ModelHooks{});
  ASSERT_TRUE(direct.error.empty()) << direct.error;
  EXPECT_EQ(direct.sim.engine, noc::SimEngine::kAnalytical);

  const std::string path =
      testing::TempDir() + "nocbt_placed_replay_analytical.csv";
  const noc::PacketTrace trace = record_schedule(direct_spec);
  ASSERT_EQ(trace.dump_csv(path), trace.size());

  ScenarioSpec replay_spec = direct_spec;
  replay_spec.generator = GeneratorKind::kReplay;
  replay_spec.trace_path = path;
  const ScenarioResult replayed = run_scenario(replay_spec, ModelHooks{});
  ASSERT_TRUE(replayed.error.empty()) << replayed.error;
  EXPECT_EQ(replayed.sim.engine, noc::SimEngine::kAnalytical);
  expect_same_measurements(direct, replayed);
}

}  // namespace
}  // namespace nocbt::sim
