// Golden seed-stability test: a small fixed-seed campaign's CSV and JSON
// reports are committed under tests/sim/golden/ and compared *exactly*.
// Any kernel or refactor change that shifts numbers — BT counts, seeds,
// scenario names, report formatting — fails here and has to be reviewed
// (and the golden regenerated deliberately) instead of silently shipping.
//
// To regenerate after an intentional change:
//   NOCBT_REGEN_GOLDEN=1 ./build/tests/test_golden_campaign
// then inspect the diff of tests/sim/golden/ and commit it.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "ordering/bt_kernel_backend.h"
#include "sim/campaign.h"
#include "sim/campaign_executor.h"
#include "sim/campaign_report.h"

#ifndef NOCBT_GOLDEN_DIR
#error "NOCBT_GOLDEN_DIR must point at tests/sim/golden (set by CMake)"
#endif

namespace nocbt::sim {
namespace {

/// The pinned campaign. Deliberately tiny (8 scenarios on a 4x4 mesh) but
/// wide enough to cover both formats, the paper's O2, and two registered
/// strategies, so a regression in any strategy's permutation or in the
/// BT-count kernels shifts at least one row. The uniform value
/// distribution avoids libm transcendentals, keeping the byte-exact
/// comparison portable across toolchains.
CampaignSpec golden_campaign() {
  CampaignSpec camp;
  camp.name = "golden";
  camp.root_seed = 20240515;
  camp.generators = {GeneratorKind::kUniform};
  camp.formats = {DataFormat::kFloat32, DataFormat::kFixed8};
  camp.modes = {ordering::OrderingMode::kSeparated,
                ordering::OrderingMode::kBucket,
                ordering::OrderingMode::kHybrid,
                ordering::OrderingMode::kTwoFlit};
  camp.meshes = {MeshSpec{4, 4, 2}};
  camp.windows = {16};
  camp.base.packets = 16;
  camp.base.injection_rate = 0.5;
  camp.base.value_dist = ValueDist::kUniform;
  camp.base.dist_a = -1.0;
  camp.base.dist_b = 1.0;
  return camp;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) ADD_FAILURE() << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out) << "cannot write " << path;
  out << content;
}

TEST(GoldenCampaign, ReportsMatchCommittedGoldenByteForByte) {
  const CampaignSpec camp = golden_campaign();
  const CampaignResult result = run_campaign(camp, RunnerConfig{});
  for (const ScenarioResult& row : result.rows)
    ASSERT_TRUE(row.error.empty()) << row.spec.name << ": " << row.error;

  const std::string csv_path =
      ::testing::TempDir() + "/golden_campaign_actual.csv";
  write_csv_report(csv_path, camp, result);
  const std::string actual_csv = read_file(csv_path);
  const std::string actual_json = json_report(camp, result) + "\n";

  const std::string golden_dir = NOCBT_GOLDEN_DIR;
  if (std::getenv("NOCBT_REGEN_GOLDEN") != nullptr) {
    write_file(golden_dir + "/campaign_golden.csv", actual_csv);
    write_file(golden_dir + "/campaign_golden.json", actual_json);
    GTEST_SKIP() << "regenerated golden files in " << golden_dir;
  }

  EXPECT_EQ(actual_csv, read_file(golden_dir + "/campaign_golden.csv"))
      << "campaign CSV drifted from the committed golden; if the change is "
         "intentional, regenerate with NOCBT_REGEN_GOLDEN=1 and review the "
         "diff";
  EXPECT_EQ(actual_json, read_file(golden_dir + "/campaign_golden.json"))
      << "campaign JSON drifted from the committed golden; if the change is "
         "intentional, regenerate with NOCBT_REGEN_GOLDEN=1 and review the "
         "diff";
}

TEST(GoldenCampaign, EveryKernelTierIsByteIdenticalToGolden) {
  // The BtKernelBackend contract is that the selected tier can never
  // change a result — every tier computes the same exact integer sums.
  // Pin it end to end: the whole campaign report must match the committed
  // golden byte for byte under every tier this host can execute, not just
  // the auto-dispatched one.
  if (std::getenv("NOCBT_REGEN_GOLDEN") != nullptr)
    GTEST_SKIP() << "regeneration run";
  const CampaignSpec camp = golden_campaign();
  const std::string golden =
      read_file(std::string(NOCBT_GOLDEN_DIR) + "/campaign_golden.json");
  for (const ordering::BtKernelBackend* backend :
       ordering::registered_kernel_backends()) {
    if (!backend->available()) continue;
    const ordering::ScopedKernelTier force(backend->name());
    const CampaignResult result = run_campaign(camp, RunnerConfig{});
    EXPECT_EQ(json_report(camp, result) + "\n", golden)
        << "campaign report drifted under forced kernel tier '"
        << backend->name() << "'";
  }
}

TEST(GoldenCampaign, ParallelRunIsByteIdenticalToGolden) {
  // The runner promises N-thread == 1-thread byte-identical results; pin
  // that against the same golden so a scheduling-dependent regression in a
  // strategy (e.g. shared mutable state) is caught here too.
  const CampaignSpec camp = golden_campaign();
  RunnerConfig runner;
  runner.threads = 4;
  const CampaignResult result = run_campaign(camp, runner);
  const std::string golden =
      read_file(std::string(NOCBT_GOLDEN_DIR) + "/campaign_golden.json");
  if (std::getenv("NOCBT_REGEN_GOLDEN") != nullptr)
    GTEST_SKIP() << "regeneration run";
  EXPECT_EQ(json_report(camp, result) + "\n", golden);
}

}  // namespace
}  // namespace nocbt::sim
