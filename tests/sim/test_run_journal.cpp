// Tests for the checkpoint/resume journal and the shard merge step: header
// validation (the spec-hash gate), append/replay round trips, tolerance of
// the torn records a kill leaves behind, and merge_campaign's
// byte-identity-enabling row reassembly.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/campaign.h"
#include "sim/run_journal.h"
#include "sim/scenario_cache.h"

namespace nocbt::sim {
namespace {

CampaignSpec tiny_campaign() {
  CampaignSpec camp;
  camp.name = "journal-unit";
  camp.root_seed = 7;
  camp.generators = {GeneratorKind::kUniform};
  camp.modes = {ordering::OrderingMode::kBaseline,
                ordering::OrderingMode::kSeparated};
  camp.base.packets = 8;
  return camp;
}

/// Deterministic fake measurements — journal tests never need to simulate.
ScenarioResult fake_row(const ScenarioSpec& spec, std::uint64_t salt) {
  ScenarioResult row;
  row.spec = spec;
  row.bt_baseline = 1000 + salt;
  row.bt_ordered = 900 + salt;
  row.reduction = 0.1 + static_cast<double>(salt) / 1000.0;
  row.cycles = 50 + salt;
  row.packets = 8;
  row.flits = 32;
  row.drained = true;
  return row;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << body;
}

TEST(RunJournal, AppendThenReadRoundTrips) {
  const std::string path = testing::TempDir() + "nocbt_journal_roundtrip.jnl";
  const CampaignSpec camp = tiny_campaign();
  const std::string hash = campaign_content_hash(camp);
  const auto scenarios = camp.expand();
  {
    RunJournal journal(path, hash, scenarios.size(), /*fresh=*/true);
    for (std::size_t i = 0; i < scenarios.size(); ++i)
      journal.append(scenario_content_key(scenarios[i], "").hash, i,
                     fake_row(scenarios[i], i));
  }
  const JournalContents contents = read_journal(path);
  ASSERT_TRUE(contents.exists);
  ASSERT_TRUE(contents.header_ok);
  EXPECT_EQ(contents.campaign_hash, hash);
  EXPECT_EQ(contents.total, scenarios.size());
  EXPECT_TRUE(contents.warnings.empty());
  ASSERT_EQ(contents.rows.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const std::string key = scenario_content_key(scenarios[i], "").hash;
    ASSERT_TRUE(contents.rows.count(key));
    ScenarioResult expected = fake_row(scenarios[i], i);
    ScenarioResult got = contents.rows.at(key);
    got.spec = scenarios[i];  // consumers re-attach the live spec
    EXPECT_TRUE(got == expected);
    EXPECT_EQ(contents.indexes.at(key), i);
  }
}

TEST(RunJournal, ReopeningAppendsInsteadOfTruncating) {
  const std::string path = testing::TempDir() + "nocbt_journal_reopen.jnl";
  const CampaignSpec camp = tiny_campaign();
  const std::string hash = campaign_content_hash(camp);
  const auto scenarios = camp.expand();
  {
    RunJournal first(path, hash, scenarios.size(), /*fresh=*/true);
    first.append(scenario_content_key(scenarios[0], "").hash, 0,
                 fake_row(scenarios[0], 0));
  }
  {
    RunJournal resumed(path, hash, scenarios.size(), /*fresh=*/false);
    resumed.append(scenario_content_key(scenarios[1], "").hash, 1,
                   fake_row(scenarios[1], 1));
  }
  EXPECT_EQ(read_journal(path).rows.size(), 2u);
}

TEST(RunJournal, MissingFileAndBadHeaderAreSignalledNotThrown) {
  const JournalContents missing =
      read_journal(testing::TempDir() + "nocbt_journal_nope.jnl");
  EXPECT_FALSE(missing.exists);
  EXPECT_TRUE(missing.warnings.empty());

  const std::string path = testing::TempDir() + "nocbt_journal_badhdr.jnl";
  write_file(path, "this is not a journal\n");
  const JournalContents bad = read_journal(path);
  EXPECT_TRUE(bad.exists);
  EXPECT_FALSE(bad.header_ok);
  ASSERT_EQ(bad.warnings.size(), 1u);
  EXPECT_NE(bad.warnings[0].find(path), std::string::npos) << bad.warnings[0];
}

TEST(RunJournal, TornFinalRecordIsRejectedByNameAndRestSurvives) {
  const std::string path = testing::TempDir() + "nocbt_journal_torn.jnl";
  const CampaignSpec camp = tiny_campaign();
  const std::string hash = campaign_content_hash(camp);
  const auto scenarios = camp.expand();
  {
    RunJournal journal(path, hash, scenarios.size(), /*fresh=*/true);
    for (std::size_t i = 0; i < scenarios.size(); ++i)
      journal.append(scenario_content_key(scenarios[i], "").hash, i,
                     fake_row(scenarios[i], i));
  }
  // Tear the last record in half — what a kill mid-append leaves behind.
  std::string body = read_file(path);
  const std::size_t cut = body.rfind("rec,");
  ASSERT_NE(cut, std::string::npos);
  write_file(path, body.substr(0, cut + 30));

  const JournalContents contents = read_journal(path);
  ASSERT_TRUE(contents.header_ok);
  EXPECT_EQ(contents.rows.size(), scenarios.size() - 1)
      << "intact records must still resume";
  ASSERT_EQ(contents.warnings.size(), 1u);
  EXPECT_NE(contents.warnings[0].find(path), std::string::npos)
      << "warning must name the file: " << contents.warnings[0];
  EXPECT_NE(contents.warnings[0].find("record 2"), std::string::npos)
      << "warning must name the offending record: " << contents.warnings[0];
}

TEST(RunJournal, CorruptMiddleRecordIsSkippedOthersKept) {
  const std::string path = testing::TempDir() + "nocbt_journal_flip.jnl";
  const CampaignSpec camp = tiny_campaign();
  const std::string hash = campaign_content_hash(camp);
  const auto scenarios = camp.expand();
  {
    RunJournal journal(path, hash, scenarios.size(), /*fresh=*/true);
    for (std::size_t i = 0; i < scenarios.size(); ++i)
      journal.append(scenario_content_key(scenarios[i], "").hash, i,
                     fake_row(scenarios[i], i));
  }
  std::string body = read_file(path);
  const std::size_t first_rec = body.find("rec,");
  ASSERT_NE(first_rec, std::string::npos);
  body[first_rec + 20] = body[first_rec + 20] == '1' ? '2' : '1';
  write_file(path, body);

  const JournalContents contents = read_journal(path);
  EXPECT_EQ(contents.rows.size(), scenarios.size() - 1);
  ASSERT_EQ(contents.warnings.size(), 1u);
  EXPECT_NE(contents.warnings[0].find("record 1"), std::string::npos)
      << contents.warnings[0];
}

TEST(MergeCampaign, ReassemblesShardJournalsInGridOrder) {
  const CampaignSpec camp = tiny_campaign();
  const std::string hash = campaign_content_hash(camp);
  const auto scenarios = camp.expand();
  // Interleaved 2-way split, written in opposite orders to prove the merge
  // sorts by grid position, not journal order.
  const std::string p0 = testing::TempDir() + "nocbt_merge_s0.jnl";
  const std::string p1 = testing::TempDir() + "nocbt_merge_s1.jnl";
  {
    RunJournal s0(p0, hash, scenarios.size(), true);
    RunJournal s1(p1, hash, scenarios.size(), true);
    for (std::size_t i = scenarios.size(); i-- > 0;) {
      RunJournal& shard = (i % 2 == 0) ? s0 : s1;
      shard.append(scenario_content_key(scenarios[i], "").hash, i,
                   fake_row(scenarios[i], i));
    }
  }
  const CampaignResult merged = merge_campaign(camp, {p0, p1});
  ASSERT_EQ(merged.rows.size(), scenarios.size());
  EXPECT_EQ(merged.stats.journal_hits, scenarios.size());
  EXPECT_EQ(merged.stats.simulated, 0u);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(merged.rows[i].spec.name, scenarios[i].name);
    EXPECT_TRUE(merged.rows[i] == fake_row(scenarios[i], i));
  }
}

TEST(MergeCampaign, RefusesForeignAndIncompleteJournals) {
  const CampaignSpec camp = tiny_campaign();
  const std::string hash = campaign_content_hash(camp);
  const auto scenarios = camp.expand();
  const std::string partial = testing::TempDir() + "nocbt_merge_partial.jnl";
  {
    RunJournal journal(partial, hash, scenarios.size(), true);
    journal.append(scenario_content_key(scenarios[0], "").hash, 0,
                   fake_row(scenarios[0], 0));
  }
  // Missing rows: the error names the absent scenarios.
  try {
    (void)merge_campaign(camp, {partial});
    FAIL() << "incomplete journal set must not merge";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(scenarios[1].name),
              std::string::npos)
        << e.what();
  }
  // Foreign journal: written under a different spec hash.
  CampaignSpec other = camp;
  other.root_seed = 1234;
  try {
    (void)merge_campaign(other, {partial});
    FAIL() << "foreign journal must be refused";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(hash), std::string::npos) << what;
    EXPECT_NE(what.find(campaign_content_hash(other)), std::string::npos)
        << what;
  }
  // Nonexistent journal file.
  EXPECT_THROW(
      (void)merge_campaign(camp, {testing::TempDir() + "nocbt_merge_no.jnl"}),
      std::runtime_error);
}

}  // namespace
}  // namespace nocbt::sim
