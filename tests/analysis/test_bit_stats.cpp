// Tests for the per-bit-position statistics behind Figs. 10-11: '1'
// probability per bit and transition probability per bit lane across
// consecutive flits, both reported MSB-first.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "analysis/bit_stats.h"
#include "common/rng.h"

namespace nocbt::analysis {
namespace {

TEST(OneProbabilityPerBit, EmptyStreamIsAllZero) {
  const std::vector<std::uint32_t> empty;
  const auto fixed = one_probability_per_bit(empty, DataFormat::kFixed8);
  ASSERT_EQ(fixed.size(), 8u);
  for (const double p : fixed) EXPECT_EQ(p, 0.0);

  const auto fp = one_probability_per_bit(empty, DataFormat::kFloat32);
  ASSERT_EQ(fp.size(), 32u);
  for (const double p : fp) EXPECT_EQ(p, 0.0);
}

TEST(OneProbabilityPerBit, MsbFirstOrientation) {
  // A single 0x80 pattern: only the MSB is set, and the MSB is index 0.
  const std::vector<std::uint32_t> patterns = {0x80};
  const auto p = one_probability_per_bit(patterns, DataFormat::kFixed8);
  ASSERT_EQ(p.size(), 8u);
  EXPECT_EQ(p[0], 1.0);
  for (std::size_t b = 1; b < 8; ++b) EXPECT_EQ(p[b], 0.0);
}

TEST(OneProbabilityPerBit, CountsAcrossPatterns) {
  // {0xFF, 0x00} -> every position is '1' half the time; adding 0x0F skews
  // the low nibble (MSB-first indices 4..7) to 2/3.
  const std::vector<std::uint32_t> half = {0xFF, 0x00};
  for (const double p : one_probability_per_bit(half, DataFormat::kFixed8))
    EXPECT_DOUBLE_EQ(p, 0.5);

  const std::vector<std::uint32_t> skew = {0xFF, 0x00, 0x0F};
  const auto p = one_probability_per_bit(skew, DataFormat::kFixed8);
  for (std::size_t b = 0; b < 4; ++b) EXPECT_DOUBLE_EQ(p[b], 1.0 / 3.0);
  for (std::size_t b = 4; b < 8; ++b) EXPECT_DOUBLE_EQ(p[b], 2.0 / 3.0);
}

TEST(OneProbabilityPerBit, Float32UsesAll32Positions) {
  // Sign bit set on half the values: MSB-first index 0 should read 0.5.
  const std::vector<std::uint32_t> patterns = {0x80000000u, 0x00000000u};
  const auto p = one_probability_per_bit(patterns, DataFormat::kFloat32);
  ASSERT_EQ(p.size(), 32u);
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  for (std::size_t b = 1; b < 32; ++b) EXPECT_EQ(p[b], 0.0);
}

TEST(TransitionProbabilityPerBit, ZeroLanesThrows) {
  const std::vector<std::uint32_t> patterns = {1, 2};
  EXPECT_THROW(transition_probability_per_bit(patterns, DataFormat::kFixed8, 0),
               std::invalid_argument);
}

TEST(TransitionProbabilityPerBit, SingleFlitHasNoTransitions) {
  // Two values, two lanes -> one flit -> no consecutive pair to compare.
  const std::vector<std::uint32_t> patterns = {0xFF, 0x00};
  const auto p =
      transition_probability_per_bit(patterns, DataFormat::kFixed8, 2);
  ASSERT_EQ(p.size(), 8u);
  for (const double v : p) EXPECT_EQ(v, 0.0);
}

TEST(TransitionProbabilityPerBit, LanewiseHandComputedCase) {
  // Flit 0 lanes (0x00, 0x00), flit 1 lanes (0xFF, 0x0F): lane 0 flips all
  // 8 positions, lane 1 flips the low nibble. Two lane comparisons total,
  // so MSB-first positions 0..3 read 1/2 and 4..7 read 1.
  const std::vector<std::uint32_t> patterns = {0x00, 0x00, 0xFF, 0x0F};
  const auto p =
      transition_probability_per_bit(patterns, DataFormat::kFixed8, 2);
  ASSERT_EQ(p.size(), 8u);
  for (std::size_t b = 0; b < 4; ++b) EXPECT_DOUBLE_EQ(p[b], 0.5);
  for (std::size_t b = 4; b < 8; ++b) EXPECT_DOUBLE_EQ(p[b], 1.0);
}

TEST(TransitionProbabilityPerBit, RaggedTailIsZeroPadded) {
  // Three identical values, two lanes: flit 1's missing lane compares
  // 0xFF -> 0x00 (pad), so every position flips once in two comparisons.
  const std::vector<std::uint32_t> patterns = {0xFF, 0xFF, 0xFF};
  const auto p =
      transition_probability_per_bit(patterns, DataFormat::kFixed8, 2);
  for (const double v : p) EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(TransitionProbabilityPerBit, ProbabilitiesStayInUnitInterval) {
  Rng rng(17);
  std::vector<std::uint32_t> patterns;
  for (int i = 0; i < 1000; ++i)
    patterns.push_back(static_cast<std::uint32_t>(rng.bits64()));
  for (const unsigned lanes : {1u, 3u, 8u}) {
    for (const double v :
         transition_probability_per_bit(patterns, DataFormat::kFloat32, lanes)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

}  // namespace
}  // namespace nocbt::analysis
