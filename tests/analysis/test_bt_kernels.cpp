// Differential tests pinning the word-packed BT/HD kernels byte-identical
// to the retained naive per-bit reference implementations, over randomized
// widths — including non-multiple-of-64 flit widths and zero-length edge
// cases. These are the proofs behind micro_ordering's speedup claims.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/bt_count.h"
#include "common/bitops.h"
#include "common/bitvec.h"
#include "common/rng.h"
#include "ordering/bt_kernel_backend.h"
#include "ordering/bt_kernels.h"

namespace nocbt {
namespace {

std::vector<std::uint32_t> random_patterns(std::size_t n, unsigned bits,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(static_cast<std::uint32_t>(rng.bits64() & low_mask(bits)));
  return out;
}

BitVec random_bitvec(unsigned width, Rng& rng) {
  BitVec v(width);
  for (unsigned b = 0; b < width; ++b) v.set_bit(b, rng.flip(0.5));
  return v;
}

TEST(SequenceBtKernel, PackedMatchesNaiveReferenceForRandomWindows) {
  for (const DataFormat format : {DataFormat::kFloat32, DataFormat::kFixed8}) {
    // Window sizes straddling the 64-bit word (for fixed-8 a word holds 8
    // values, for float-32 two) and the 128-word stack-buffer threshold of
    // the span overload (128 words = 1024 fixed-8 / 256 float-32 values).
    for (const std::size_t n : {0u, 1u, 2u, 3u, 7u, 8u, 9u, 15u, 16u, 17u,
                                32u, 63u, 64u, 65u, 255u, 256u, 257u, 1023u,
                                1024u, 1025u}) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto window = random_patterns(n, value_bits(format), seed * 37 + n);
        const std::uint64_t reference =
            ordering::sequence_bt_reference(window, format);
        EXPECT_EQ(ordering::sequence_bt(window, format), reference)
            << "span overload, n=" << n << " seed=" << seed;
        EXPECT_EQ(ordering::sequence_bt(ordering::pack_patterns(window, format)),
                  reference)
            << "PackedStream overload, n=" << n << " seed=" << seed;
        // The permuted kernel over the identity permutation is the same sum.
        std::vector<std::uint32_t> identity(n);
        for (std::size_t i = 0; i < n; ++i)
          identity[i] = static_cast<std::uint32_t>(i);
        EXPECT_EQ(ordering::permuted_sequence_bt(window, identity, format),
                  reference)
            << "permuted overload, n=" << n << " seed=" << seed;
      }
    }
  }
}

TEST(SequenceBtKernel, EveryKernelTierMatchesNaiveReference) {
  // The span overload dispatches through the active BtKernelBackend; force
  // each registered tier in turn so every machine kernel this host can run
  // is pinned to the same sums (the dedicated backend suite covers the
  // backend API itself — this guards the dispatched free functions the
  // strategies and sim actually call).
  for (const ordering::BtKernelBackend* backend :
       ordering::registered_kernel_backends()) {
    if (!backend->available()) continue;
    const ordering::ScopedKernelTier force(backend->name());
    for (const DataFormat format : {DataFormat::kFloat32, DataFormat::kFixed8}) {
      for (const std::size_t n :
           {0u, 1u, 2u, 7u, 8u, 9u, 31u, 32u, 33u, 63u, 64u, 65u, 257u}) {
        const auto window = random_patterns(n, value_bits(format), 7 * n + 1);
        EXPECT_EQ(ordering::sequence_bt(window, format),
                  ordering::sequence_bt_reference(window, format))
            << backend->name() << " n=" << n;
      }
    }
  }
}

TEST(SequenceBtKernel, MasksStrayHighBitsLikeTheReference) {
  // Fixed-8 patterns arrive in uint32 slots; bits above the format width
  // must not contribute for either implementation.
  const std::vector<std::uint32_t> dirty = {0xFFFFFF01u, 0xABCD00F0u,
                                            0x12340055u};
  EXPECT_EQ(ordering::sequence_bt(dirty, DataFormat::kFixed8),
            ordering::sequence_bt_reference(dirty, DataFormat::kFixed8));
  // 0x01 -> 0xF0: XOR 0xF1, 5 flips; 0xF0 -> 0x55: XOR 0xA5, 4 flips.
  EXPECT_EQ(ordering::sequence_bt(dirty, DataFormat::kFixed8), 9u);
}

TEST(SequenceBtKernel, PackedStreamLayoutIsLsbFirst) {
  const std::vector<std::uint32_t> patterns = {0xAB, 0xCD, 0x12, 0x34, 0x56,
                                               0x78, 0x9A, 0xBC, 0xDE};
  const auto stream = ordering::pack_patterns(patterns, DataFormat::kFixed8);
  EXPECT_EQ(stream.value_count, patterns.size());
  EXPECT_EQ(stream.bits_per_value, 8u);
  EXPECT_EQ(stream.bit_length(), 72u);
  ASSERT_EQ(stream.words.size(), 2u);
  EXPECT_EQ(stream.words[0], 0xBC9A78563412CDABull);  // values 0..7, LSB first
  EXPECT_EQ(stream.words[1], 0xDEull);                // ragged tail, rest zero
  // Value i sits at bits [8i, 8i+8).
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    const std::size_t pos = i * 8;
    const std::uint64_t word = stream.words[pos / 64];
    EXPECT_EQ((word >> (pos % 64)) & 0xFF, patterns[i]) << "value " << i;
  }
}

TEST(PairwiseHdMatrix, MatchesDirectPopcount) {
  for (const DataFormat format : {DataFormat::kFloat32, DataFormat::kFixed8}) {
    const auto window = random_patterns(37, value_bits(format), 99);
    const auto matrix = ordering::pairwise_hd_matrix(window, format);
    ASSERT_EQ(matrix.size(), window.size() * window.size());
    for (std::size_t i = 0; i < window.size(); ++i) {
      EXPECT_EQ(matrix[i * window.size() + i], 0u);
      for (std::size_t j = 0; j < window.size(); ++j)
        EXPECT_EQ(matrix[i * window.size() + j],
                  static_cast<unsigned>(popcount32(window[i] ^ window[j])))
            << "i=" << i << " j=" << j;
    }
  }
  EXPECT_TRUE(
      ordering::pairwise_hd_matrix({}, DataFormat::kFixed8).empty());
}

TEST(StreamBtKernel, WordPackedMatchesPerBitReferenceAcrossWidths) {
  // Flit widths deliberately straddle the word size: the word-packed path
  // (BitVec XOR+popcount) must agree with the naive per-bit walk even when
  // the last word is ragged.
  Rng rng(2718);
  for (const unsigned width : {1u, 7u, 63u, 64u, 65u, 100u, 127u, 128u, 129u,
                               191u, 192u, 511u, 512u, 513u}) {
    for (const std::size_t flit_count : {0u, 1u, 2u, 5u, 9u}) {
      std::vector<BitVec> flits;
      flits.reserve(flit_count);
      for (std::size_t i = 0; i < flit_count; ++i)
        flits.push_back(random_bitvec(width, rng));
      const analysis::StreamBt fast = analysis::stream_bt(flits);
      const analysis::StreamBt reference = analysis::stream_bt_reference(flits);
      EXPECT_EQ(fast.total_bt, reference.total_bt)
          << "width=" << width << " flits=" << flit_count;
      EXPECT_EQ(fast.flit_pairs, reference.flit_pairs)
          << "width=" << width << " flits=" << flit_count;
    }
  }
}

TEST(StreamBtKernel, ZeroLengthAndSingleFlitEdgeCases) {
  EXPECT_EQ(analysis::stream_bt({}).total_bt, 0u);
  EXPECT_EQ(analysis::stream_bt_reference({}).total_bt, 0u);
  const std::vector<BitVec> one(1, BitVec(64));
  EXPECT_EQ(analysis::stream_bt(one).flit_pairs, 0u);
  EXPECT_EQ(analysis::stream_bt_reference(one).flit_pairs, 0u);
  EXPECT_EQ(ordering::sequence_bt({}, DataFormat::kFixed8), 0u);
  EXPECT_EQ(ordering::sequence_bt_reference({}, DataFormat::kFixed8), 0u);
}

TEST(StreamBtKernel, ReferenceRejectsMixedWidths) {
  std::vector<BitVec> flits{BitVec(64), BitVec(65)};
  EXPECT_THROW((void)analysis::stream_bt_reference(flits),
               std::invalid_argument);
}

}  // namespace
}  // namespace nocbt
