// Tests for flitization, stream BT counting, per-bit statistics, and the
// no-NoC experiment harness (Table I machinery).

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bit_stats.h"
#include "analysis/bt_count.h"
#include "analysis/stream_experiment.h"
#include "common/float_bits.h"
#include "common/rng.h"

namespace nocbt::analysis {
namespace {

TEST(Flitize, PacksSlotsAtValueOffsets) {
  const std::vector<std::uint32_t> patterns = {0xAB, 0xCD, 0xEF};
  const auto flits = flitize(patterns, DataFormat::kFixed8, 2);
  ASSERT_EQ(flits.size(), 2u);
  EXPECT_EQ(flits[0].width(), 16u);
  EXPECT_EQ(flits[0].get_field(0, 8), 0xABu);
  EXPECT_EQ(flits[0].get_field(8, 8), 0xCDu);
  EXPECT_EQ(flits[1].get_field(0, 8), 0xEFu);
  EXPECT_EQ(flits[1].get_field(8, 8), 0x00u);  // zero padding
}

TEST(Flitize, Float32Slots) {
  const std::vector<std::uint32_t> patterns = {0xDEADBEEF, 0x12345678};
  const auto flits = flitize(patterns, DataFormat::kFloat32, 8);
  ASSERT_EQ(flits.size(), 1u);
  EXPECT_EQ(flits[0].width(), 256u);
  EXPECT_EQ(flits[0].get_field(0, 32), 0xDEADBEEFu);
  EXPECT_EQ(flits[0].get_field(32, 32), 0x12345678u);
}

TEST(StreamBt, CountsConsecutivePairsOnly) {
  std::vector<BitVec> flits;
  for (std::uint64_t bits : {0x0ull, 0xFFull, 0xFFull, 0x0Full}) {
    BitVec v(64);
    v.set_field(0, 64, bits);
    flits.push_back(v);
  }
  const StreamBt result = stream_bt(flits);
  EXPECT_EQ(result.flit_pairs, 3u);
  EXPECT_EQ(result.total_bt, 8u + 0u + 4u);
  EXPECT_DOUBLE_EQ(result.bt_per_flit(), 4.0);
}

TEST(StreamBt, EmptyAndSingle) {
  EXPECT_EQ(stream_bt({}).total_bt, 0u);
  std::vector<BitVec> one(1, BitVec(64));
  EXPECT_EQ(stream_bt(one).flit_pairs, 0u);
  EXPECT_DOUBLE_EQ(stream_bt(one).bt_per_flit(), 0.0);
}

TEST(BitStats, OneProbabilityMsbFirst) {
  // Patterns: 0x80 has MSB set, 0x01 has LSB set.
  const std::vector<std::uint32_t> patterns = {0x80, 0x80, 0x01, 0x00};
  const auto p = one_probability_per_bit(patterns, DataFormat::kFixed8);
  ASSERT_EQ(p.size(), 8u);
  EXPECT_DOUBLE_EQ(p[0], 0.5);   // MSB set in 2 of 4
  EXPECT_DOUBLE_EQ(p[7], 0.25);  // LSB set in 1 of 4
  for (int b = 1; b < 7; ++b) EXPECT_DOUBLE_EQ(p[static_cast<std::size_t>(b)], 0.0);
}

TEST(BitStats, FloatSignBitOfNegativeValues) {
  std::vector<std::uint32_t> patterns;
  patterns.push_back(float_to_bits(-1.0f));
  patterns.push_back(float_to_bits(-2.5f));
  patterns.push_back(float_to_bits(3.0f));
  const auto p = one_probability_per_bit(patterns, DataFormat::kFloat32);
  ASSERT_EQ(p.size(), 32u);
  EXPECT_NEAR(p[0], 2.0 / 3.0, 1e-12);  // sign bit (MSB-first index 0)
}

TEST(BitStats, TransitionProbabilityPerLane) {
  // Two flits of 2 lanes each: lane 0 flips LSB (0x00 -> 0x01), lane 1
  // unchanged.
  const std::vector<std::uint32_t> patterns = {0x00, 0xFF, 0x01, 0xFF};
  const auto p =
      transition_probability_per_bit(patterns, DataFormat::kFixed8, 2);
  ASSERT_EQ(p.size(), 8u);
  EXPECT_DOUBLE_EQ(p[7], 0.5);  // LSB flipped in 1 of 2 lane comparisons
  for (int b = 0; b < 7; ++b) EXPECT_DOUBLE_EQ(p[static_cast<std::size_t>(b)], 0.0);
}

TEST(BitStats, EmptyInputsYieldZeros) {
  const std::vector<std::uint32_t> empty;
  for (double v : one_probability_per_bit(empty, DataFormat::kFixed8))
    EXPECT_DOUBLE_EQ(v, 0.0);
  for (double v :
       transition_probability_per_bit(empty, DataFormat::kFixed8, 4))
    EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(MakePatterns, Float32IsRawBits) {
  const std::vector<float> values = {1.0f, -1.0f};
  const auto stream = make_patterns(values, DataFormat::kFloat32);
  EXPECT_FALSE(stream.codec.has_value());
  EXPECT_EQ(stream.patterns[0], float_to_bits(1.0f));
  EXPECT_EQ(stream.patterns[1], float_to_bits(-1.0f));
}

TEST(MakePatterns, Fixed8CalibratesOnStream) {
  const std::vector<float> values = {0.5f, -1.0f, 0.25f};
  const auto stream = make_patterns(values, DataFormat::kFixed8);
  ASSERT_TRUE(stream.codec.has_value());
  // -1.0 is the max-abs: it maps to code -127 = pattern 0x81.
  EXPECT_EQ(stream.patterns[1], 0x81u);
}

TEST(TilePatterns, RepeatsStream) {
  const std::vector<std::uint32_t> source = {1, 2, 3};
  const auto tiled = tile_patterns(source, 8);
  EXPECT_EQ(tiled, (std::vector<std::uint32_t>{1, 2, 3, 1, 2, 3, 1, 2}));
  EXPECT_THROW(tile_patterns({}, 4), std::invalid_argument);
}

TEST(StreamExperiment, OrderingReducesBtOnBimodalData) {
  // Randomly interleaved near-+max (few ones under two's complement) and
  // near--max (many ones) values: baseline lanes mix the two populations,
  // ordering groups them, collapsing transitions.
  Rng rng(55);
  std::vector<float> values;
  for (int i = 0; i < 4096; ++i)
    values.push_back(rng.flip(0.5)
                         ? 1.0f + static_cast<float>(rng.uniform(0, 0.1))
                         : -1.0f - static_cast<float>(rng.uniform(0, 0.1)));
  StreamExperimentConfig cfg;
  cfg.format = DataFormat::kFixed8;
  cfg.values_per_flit = 8;
  cfg.flits_per_packet = 16;
  cfg.num_packets = 200;
  const auto result = run_stream_experiment(values, cfg);
  EXPECT_GT(result.baseline_bt_per_flit, 0.0);
  EXPECT_GT(result.reduction(), 0.30);
  EXPECT_EQ(result.flit_bits, 64u);
}

TEST(StreamExperiment, OrderingNearNeutralOnUniformRandomBits) {
  // For i.i.d. uniform random bit patterns the expected gain is small; the
  // experiment must not *increase* BT materially.
  Rng rng(56);
  std::vector<float> values;
  for (int i = 0; i < 8192; ++i)
    values.push_back(bits_to_float((static_cast<std::uint32_t>(rng.bits64()) &
                                    0x007FFFFFu) |
                                   0x3F000000u));  // uniform mantissas
  StreamExperimentConfig cfg;
  cfg.format = DataFormat::kFloat32;
  cfg.num_packets = 100;
  const auto result = run_stream_experiment(values, cfg);
  EXPECT_GT(result.reduction(), -0.02);
  EXPECT_LT(result.reduction(), 0.30);
}

TEST(StreamExperiment, RejectsDegenerateConfig) {
  const std::vector<float> values = {1.0f};
  StreamExperimentConfig cfg;
  cfg.values_per_flit = 0;
  EXPECT_THROW(run_stream_experiment(values, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace nocbt::analysis
