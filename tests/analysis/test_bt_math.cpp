// Tests for the analytic BT model (Eqs. 1-3, Fig. 1), cross-validated
// against Monte-Carlo simulation of the independence model.

#include <gtest/gtest.h>

#include "analysis/bt_math.h"
#include "common/rng.h"

namespace nocbt::analysis {
namespace {

TEST(BtMath, ClosedFormMatchesEq2At32Bits) {
  // Eq. 2: E = x + y - xy/16 for W = 32.
  for (int x : {0, 1, 8, 16, 32}) {
    for (int y : {0, 3, 16, 31}) {
      EXPECT_NEAR(expected_bt(x, y, 32), x + y - (x * y) / 16.0, 1e-12)
          << "x=" << x << " y=" << y;
    }
  }
}

TEST(BtMath, Extremes) {
  // All-zeros vs all-zeros: no transitions; all-ones vs all-ones: none;
  // all-ones vs all-zeros: every wire flips.
  EXPECT_DOUBLE_EQ(expected_bt(0, 0, 32), 0.0);
  EXPECT_DOUBLE_EQ(expected_bt(32, 32, 32), 0.0);
  EXPECT_DOUBLE_EQ(expected_bt(32, 0, 32), 32.0);
  EXPECT_DOUBLE_EQ(expected_bt(0, 32, 32), 32.0);
}

TEST(BtMath, SymmetricInXAndY) {
  for (int x = 0; x <= 8; ++x)
    for (int y = 0; y <= 8; ++y)
      EXPECT_DOUBLE_EQ(expected_bt(x, y, 8), expected_bt(y, x, 8));
}

TEST(BtMath, ProbabilityBounds) {
  for (int x = 0; x <= 32; ++x) {
    for (int y = 0; y <= 32; ++y) {
      const double p = transition_probability(x, y, 32);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(BtMath, RejectsOutOfRange) {
  EXPECT_THROW(transition_probability(-1, 0, 32), std::invalid_argument);
  EXPECT_THROW(transition_probability(0, 33, 32), std::invalid_argument);
  EXPECT_THROW(transition_probability(0, 0, 0), std::invalid_argument);
}

TEST(BtMath, SurfaceShapeAndCorners) {
  const auto grid = expectation_surface(32);
  ASSERT_EQ(grid.size(), 33u);
  ASSERT_EQ(grid[0].size(), 33u);
  EXPECT_DOUBLE_EQ(grid[0][0], 0.0);
  EXPECT_DOUBLE_EQ(grid[32][32], 0.0);
  EXPECT_DOUBLE_EQ(grid[32][0], 32.0);
  EXPECT_DOUBLE_EQ(grid[16][16], 16.0 + 16.0 - 256.0 / 16.0);
}

TEST(BtMath, SurfaceMaximumOnAntiDiagonal) {
  // E is maximized when one number is all ones and the other all zeros.
  const auto grid = expectation_surface(32);
  double best = 0.0;
  for (const auto& row : grid)
    for (double v : row) best = std::max(best, v);
  EXPECT_DOUBLE_EQ(best, 32.0);
}

// Property sweep: Monte-Carlo of the independence model converges to the
// closed form for a grid of (x, y) pairs.
struct McCase {
  int x;
  int y;
};
class BtMathMonteCarlo : public ::testing::TestWithParam<McCase> {};

TEST_P(BtMathMonteCarlo, ClosedFormMatchesSimulation) {
  const auto [x, y] = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(x) * 64 + y);
  const double mc = monte_carlo_expected_bt(x, y, 32, 20'000, rng);
  EXPECT_NEAR(mc, expected_bt(x, y, 32), 0.15) << "x=" << x << " y=" << y;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BtMathMonteCarlo,
    ::testing::Values(McCase{0, 0}, McCase{1, 1}, McCase{4, 28}, McCase{8, 8},
                      McCase{16, 16}, McCase{16, 8}, McCase{24, 4},
                      McCase{31, 2}, McCase{32, 16}, McCase{32, 32}),
    [](const ::testing::TestParamInfo<McCase>& info) {
      return "x" + std::to_string(info.param.x) + "_y" +
             std::to_string(info.param.y);
    });

TEST(BtMath, FlitExpectationSumsPerValue) {
  const std::vector<int> x = {8, 16, 32};
  const std::vector<int> y = {4, 16, 0};
  const double total = expected_flit_bt(x, y, 32);
  EXPECT_NEAR(total,
              expected_bt(8, 4, 32) + expected_bt(16, 16, 32) +
                  expected_bt(32, 0, 32),
              1e-12);
  const std::vector<int> bad = {1};
  EXPECT_THROW(expected_flit_bt(x, bad, 32), std::invalid_argument);
}

}  // namespace
}  // namespace nocbt::analysis
