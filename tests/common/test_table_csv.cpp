// Unit tests for the ASCII table renderer, number formatting, CSV writer,
// and the key=value Options parser.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/config.h"
#include "common/csv.h"
#include "common/table.h"

namespace nocbt {
namespace {

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"bb", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(AsciiTable, PadsColumnsToWidestCell) {
  AsciiTable t({"h"});
  t.add_row({"longervalue"});
  const std::string out = t.render();
  // Header row must be padded to the width of "longervalue".
  EXPECT_NE(out.find("| h           |"), std::string::npos);
}

TEST(Formatting, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(-2.5, 1), "-2.5");
}

TEST(Formatting, FormatPercent) {
  EXPECT_EQ(format_percent(0.2038), "20.38%");
  EXPECT_EQ(format_percent(0.5571), "55.71%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = "/tmp/nocbt_test_csv.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.add_row({"1", "2"});
    csv.add_row({"x,y", "quote\"inside"});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(content.find("a,b\n"), std::string::npos);
  EXPECT_NE(content.find("\"x,y\""), std::string::npos);
  EXPECT_NE(content.find("\"quote\"\"inside\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvWriter, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_zzz/file.csv", {"a"}),
               std::runtime_error);
}

TEST(Options, ParsesKeyValuePairs) {
  const char* argv[] = {"prog", "rows=8", "ordering=O2", "verbose=true"};
  const auto opts = Options::parse(4, const_cast<char**>(argv));
  EXPECT_EQ(opts.get_int("rows", 0), 8);
  EXPECT_EQ(opts.get_string("ordering", ""), "O2");
  EXPECT_TRUE(opts.get_bool("verbose", false));
  EXPECT_EQ(opts.get_int("missing", 42), 42);
}

TEST(Options, RejectsMalformedArguments) {
  const char* argv1[] = {"prog", "noequals"};
  EXPECT_THROW(Options::parse(2, const_cast<char**>(argv1)),
               std::invalid_argument);
  const char* argv2[] = {"prog", "=value"};
  EXPECT_THROW(Options::parse(2, const_cast<char**>(argv2)),
               std::invalid_argument);
}

TEST(Options, TypedGettersValidate) {
  const char* argv[] = {"prog", "n=abc", "f=1.5", "b=yes"};
  const auto opts = Options::parse(4, const_cast<char**>(argv));
  EXPECT_THROW((void)opts.get_int("n", 0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(opts.get_double("f", 0.0), 1.5);
  EXPECT_TRUE(opts.get_bool("b", false));
}

}  // namespace
}  // namespace nocbt
