// Unit tests for BitVec, the flit payload container: bit/field access across
// word boundaries, popcount, and transition counting.

#include <gtest/gtest.h>

#include <random>

#include "common/bitvec.h"

namespace nocbt {
namespace {

TEST(BitVec, StartsAllZero) {
  BitVec v(128);
  EXPECT_EQ(v.width(), 128u);
  EXPECT_EQ(v.word_count(), 2u);
  EXPECT_EQ(v.popcount(), 0);
  for (unsigned i = 0; i < 128; ++i) EXPECT_FALSE(v.get_bit(i));
}

TEST(BitVec, SetAndGetSingleBits) {
  BitVec v(100);
  v.set_bit(0, true);
  v.set_bit(63, true);
  v.set_bit(64, true);
  v.set_bit(99, true);
  EXPECT_TRUE(v.get_bit(0));
  EXPECT_TRUE(v.get_bit(63));
  EXPECT_TRUE(v.get_bit(64));
  EXPECT_TRUE(v.get_bit(99));
  EXPECT_EQ(v.popcount(), 4);
  v.set_bit(63, false);
  EXPECT_FALSE(v.get_bit(63));
  EXPECT_EQ(v.popcount(), 3);
}

TEST(BitVec, FieldRoundTripWithinWord) {
  BitVec v(64);
  v.set_field(4, 8, 0xAB);
  EXPECT_EQ(v.get_field(4, 8), 0xABu);
  EXPECT_EQ(v.get_field(0, 4), 0u);
  EXPECT_EQ(v.get_field(12, 8), 0u);
}

TEST(BitVec, FieldRoundTripAcrossWordBoundary) {
  BitVec v(128);
  v.set_field(60, 8, 0xC3);  // spans words 0 and 1
  EXPECT_EQ(v.get_field(60, 8), 0xC3u);
  EXPECT_EQ(v.get_field(60, 4), 0x3u);
  EXPECT_EQ(v.get_field(64, 4), 0xCu);
}

TEST(BitVec, Field64BitAcrossBoundary) {
  BitVec v(256);
  const std::uint64_t pattern = 0x0123456789ABCDEFull;
  v.set_field(100, 64, pattern);
  EXPECT_EQ(v.get_field(100, 64), pattern);
}

TEST(BitVec, SetFieldOverwritesOnlyTargetBits) {
  BitVec v(64);
  v.set_field(0, 16, 0xFFFF);
  v.set_field(4, 8, 0x00);
  EXPECT_EQ(v.get_field(0, 4), 0xFu);
  EXPECT_EQ(v.get_field(4, 8), 0x0u);
  EXPECT_EQ(v.get_field(12, 4), 0xFu);
}

TEST(BitVec, SetFieldIgnoresHighBitsOfValue) {
  BitVec v(32);
  v.set_field(0, 4, 0xFF);
  EXPECT_EQ(v.get_field(0, 4), 0xFu);
  EXPECT_EQ(v.get_field(4, 4), 0u);
}

TEST(BitVec, TransitionsToCountsDifferingBits) {
  BitVec a(512);
  BitVec b(512);
  EXPECT_EQ(a.transitions_to(b), 0);
  a.set_field(0, 32, 0xFFFFFFFF);
  EXPECT_EQ(a.transitions_to(b), 32);
  b.set_field(16, 32, 0xFFFFFFFF);
  // a has bits 0..31, b has bits 16..47; symmetric difference is 32 bits.
  EXPECT_EQ(a.transitions_to(b), 32);
  EXPECT_EQ(b.transitions_to(a), 32);
}

TEST(BitVec, EqualityComparesWidthAndContents) {
  BitVec a(64);
  BitVec b(64);
  BitVec c(65);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  a.set_bit(5, true);
  EXPECT_FALSE(a == b);
  b.set_bit(5, true);
  EXPECT_EQ(a, b);
}

TEST(BitVec, ClearZeroesEverything) {
  BitVec v(200);
  for (unsigned i = 0; i < 200; i += 3) v.set_bit(i, true);
  EXPECT_GT(v.popcount(), 0);
  v.clear();
  EXPECT_EQ(v.popcount(), 0);
  EXPECT_EQ(v.width(), 200u);
}

TEST(BitVec, ToStringMsbFirst) {
  BitVec v(8);
  v.set_bit(0, true);  // LSB
  v.set_bit(7, true);  // MSB
  EXPECT_EQ(v.to_string(), "10000001");
}

TEST(BitVec, RandomFieldRoundTripProperty) {
  std::mt19937_64 rng(99);
  BitVec v(512);
  for (int trial = 0; trial < 1000; ++trial) {
    const unsigned bits = 1 + static_cast<unsigned>(rng() % 64);
    const unsigned pos = static_cast<unsigned>(rng() % (512 - bits));
    const std::uint64_t value = rng() & low_mask(bits);
    v.set_field(pos, bits, value);
    ASSERT_EQ(v.get_field(pos, bits), value)
        << "pos=" << pos << " bits=" << bits;
  }
}

}  // namespace
}  // namespace nocbt
