// Unit tests for RunningStat and Histogram.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "common/stats.h"

namespace nocbt {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesCombinedStream) {
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> dist(-10.0, 10.0);
  RunningStat all;
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 1000; ++i) {
    const double v = dist(rng);
    all.add(v);
    (i % 3 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_NEAR(a.min(), all.min(), 0.0);
  EXPECT_NEAR(a.max(), all.max(), 0.0);
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a;
  a.add(1.0);
  a.add(3.0);
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStat c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(Histogram, BinsAndTotal) {
  Histogram h(10);
  h.add(0);
  h.add(5);
  h.add(5);
  h.add(9);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(5), 2u);
  EXPECT_EQ(h.bin(9), 1u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(4);
  h.add(-100);
  h.add(100);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(3), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, MeanOfBins) {
  Histogram h(10);
  h.add(2);
  h.add(4);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, Quantile) {
  Histogram h(100);
  for (int i = 0; i < 100; ++i) h.add(i);
  EXPECT_EQ(h.quantile(0.5), 49u);
  EXPECT_EQ(h.quantile(0.99), 98u);
  EXPECT_EQ(h.quantile(1.0), 99u);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h(4);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

}  // namespace
}  // namespace nocbt
