// Unit tests for low-level bit helpers: popcount family, transition
// counting, masks, and the SWAR reference popcount that models the ordering
// unit's hardware pop-count stage.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "common/bitops.h"

namespace nocbt {
namespace {

TEST(Bitops, Popcount8Basics) {
  EXPECT_EQ(popcount8(0x00), 0);
  EXPECT_EQ(popcount8(0xFF), 8);
  EXPECT_EQ(popcount8(0x01), 1);
  EXPECT_EQ(popcount8(0x80), 1);
  EXPECT_EQ(popcount8(0xAA), 4);
  EXPECT_EQ(popcount8(0x55), 4);
}

TEST(Bitops, Popcount32Basics) {
  EXPECT_EQ(popcount32(0u), 0);
  EXPECT_EQ(popcount32(~0u), 32);
  EXPECT_EQ(popcount32(0x80000000u), 1);
  EXPECT_EQ(popcount32(0x0F0F0F0Fu), 16);
}

TEST(Bitops, Popcount64Basics) {
  EXPECT_EQ(popcount64(0ull), 0);
  EXPECT_EQ(popcount64(~0ull), 64);
  EXPECT_EQ(popcount64(0x8000000000000001ull), 2);
}

TEST(Bitops, TransitionsIsPopcountOfXor) {
  EXPECT_EQ(transitions(0ull, 0ull), 0);
  EXPECT_EQ(transitions(0ull, ~0ull), 64);
  EXPECT_EQ(transitions(0xF0ull, 0x0Full), 8);
  EXPECT_EQ(transitions(0xFFull, 0xFFull), 0);
}

TEST(Bitops, TransitionsOverSpansSumsWordwise) {
  const std::uint64_t a[] = {0x0ull, 0xFFull};
  const std::uint64_t b[] = {0xFull, 0x0Full};
  EXPECT_EQ(transitions(std::span<const std::uint64_t>(a),
                        std::span<const std::uint64_t>(b)),
            4 + 4);
}

TEST(Bitops, TransitionsIsSymmetric) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    EXPECT_EQ(transitions(a, b), transitions(b, a));
  }
}

TEST(Bitops, LowMaskEdges) {
  EXPECT_EQ(low_mask(0), 0ull);
  EXPECT_EQ(low_mask(1), 1ull);
  EXPECT_EQ(low_mask(8), 0xFFull);
  EXPECT_EQ(low_mask(63), 0x7FFFFFFFFFFFFFFFull);
  EXPECT_EQ(low_mask(64), ~0ull);
}

TEST(Bitops, SwarPopcountMatchesStdPopcount) {
  std::mt19937 rng(42);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint32_t v = rng();
    EXPECT_EQ(swar_popcount32(v), popcount32(v)) << "v=" << v;
  }
  EXPECT_EQ(swar_popcount32(0u), 0);
  EXPECT_EQ(swar_popcount32(~0u), 32);
}

TEST(Bitops, IndexBits) {
  EXPECT_EQ(index_bits(1), 1u);
  EXPECT_EQ(index_bits(2), 1u);
  EXPECT_EQ(index_bits(3), 2u);
  EXPECT_EQ(index_bits(4), 2u);
  EXPECT_EQ(index_bits(5), 3u);
  EXPECT_EQ(index_bits(16), 4u);
  EXPECT_EQ(index_bits(17), 5u);
  EXPECT_EQ(index_bits(1024), 10u);
}

}  // namespace
}  // namespace nocbt
