// Tests for the key=value option parser, including the config-file loader
// the campaign CLI builds its sweeps from.

#include <gtest/gtest.h>

#include <fstream>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.h"

namespace nocbt {
namespace {

Options parse_args(std::initializer_list<const char*> args) {
  std::vector<char*> argv{const_cast<char*>("prog")};
  for (const char* a : args) argv.push_back(const_cast<char*>(a));
  return Options::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, ParseFileReadsKeyValueLines) {
  const std::string path = testing::TempDir() + "nocbt_options_basic.cfg";
  std::ofstream(path) << "# campaign smoke sweep\n"
                      << "generators = uniform,hotspot\n"
                      << "\n"
                      << "threads=2\n"
                      << "  packets =  64  \n";
  const Options opts = Options::parse_file(path);
  EXPECT_EQ(opts.get_string("generators", ""), "uniform,hotspot");
  EXPECT_EQ(opts.get_int("threads", 0), 2);
  EXPECT_EQ(opts.get_int("packets", 0), 64);
  EXPECT_FALSE(opts.has("missing"));
}

TEST(Options, ParseFileToleratesCrlf) {
  const std::string path = testing::TempDir() + "nocbt_options_crlf.cfg";
  std::ofstream(path) << "threads=8\r\n# comment\r\nseed=11\r\n";
  const Options opts = Options::parse_file(path);
  EXPECT_EQ(opts.get_int("threads", 0), 8);
  EXPECT_EQ(opts.get_int("seed", 0), 11);
}

TEST(Options, ParseFileRejectsMalformedLine) {
  const std::string path = testing::TempDir() + "nocbt_options_bad.cfg";
  std::ofstream(path) << "threads\n";
  EXPECT_THROW(Options::parse_file(path), std::invalid_argument);
}

TEST(Options, ParseFileMissingFileThrows) {
  EXPECT_THROW(Options::parse_file("/nonexistent/dir/opts.cfg"),
               std::runtime_error);
}

TEST(Options, MergeDefaultsPrefersExplicitValues) {
  Options cli = parse_args({"threads=4", "json=out.json"});
  const std::string path = testing::TempDir() + "nocbt_options_merge.cfg";
  std::ofstream(path) << "threads=1\npackets=256\n";
  cli.merge_defaults(Options::parse_file(path));
  EXPECT_EQ(cli.get_int("threads", 0), 4);    // CLI wins
  EXPECT_EQ(cli.get_int("packets", 0), 256);  // file fills the gap
  EXPECT_EQ(cli.get_string("json", ""), "out.json");
}

}  // namespace
}  // namespace nocbt
