// Tests for the key=value option parser, including the config-file loader
// the campaign CLI builds its sweeps from.

#include <gtest/gtest.h>

#include <fstream>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.h"

namespace nocbt {
namespace {

Options parse_args(std::initializer_list<const char*> args) {
  std::vector<char*> argv{const_cast<char*>("prog")};
  for (const char* a : args) argv.push_back(const_cast<char*>(a));
  return Options::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, ParseFileReadsKeyValueLines) {
  const std::string path = testing::TempDir() + "nocbt_options_basic.cfg";
  std::ofstream(path) << "# campaign smoke sweep\n"
                      << "generators = uniform,hotspot\n"
                      << "\n"
                      << "threads=2\n"
                      << "  packets =  64  \n";
  const Options opts = Options::parse_file(path);
  EXPECT_EQ(opts.get_string("generators", ""), "uniform,hotspot");
  EXPECT_EQ(opts.get_int("threads", 0), 2);
  EXPECT_EQ(opts.get_int("packets", 0), 64);
  EXPECT_FALSE(opts.has("missing"));
}

TEST(Options, ParseFileToleratesCrlf) {
  const std::string path = testing::TempDir() + "nocbt_options_crlf.cfg";
  std::ofstream(path) << "threads=8\r\n# comment\r\nseed=11\r\n";
  const Options opts = Options::parse_file(path);
  EXPECT_EQ(opts.get_int("threads", 0), 8);
  EXPECT_EQ(opts.get_int("seed", 0), 11);
}

TEST(Options, ParseFileRejectsMalformedLine) {
  const std::string path = testing::TempDir() + "nocbt_options_bad.cfg";
  std::ofstream(path) << "threads\n";
  EXPECT_THROW(Options::parse_file(path), std::invalid_argument);
}

TEST(Options, ParseFileMissingFileThrows) {
  EXPECT_THROW(Options::parse_file("/nonexistent/dir/opts.cfg"),
               std::runtime_error);
}

TEST(Options, GetIntRejectsTrailingGarbage) {
  // stoll alone accepts "32abc" as 32, so a typo'd campaign config would
  // silently run the wrong sweep; the whole value must parse.
  const Options opts = parse_args({"window=32abc", "ok=32", "neg=-7",
                                   "hex=0x10", "spaced=32 ", "empty="});
  EXPECT_THROW(opts.get_int("window", 0), std::invalid_argument);
  EXPECT_THROW(opts.get_int("hex", 0), std::invalid_argument);
  EXPECT_THROW(opts.get_int("spaced", 0), std::invalid_argument);
  EXPECT_THROW(opts.get_int("empty", 0), std::invalid_argument);
  EXPECT_EQ(opts.get_int("ok", 0), 32);
  EXPECT_EQ(opts.get_int("neg", 0), -7);
  EXPECT_EQ(opts.get_int("missing", 5), 5);
}

TEST(Options, GetDoubleRejectsTrailingGarbage) {
  const Options opts = parse_args({"rate=0.5x", "exp=1e3junk", "ok=0.25",
                                   "sci=1e-3", "empty="});
  EXPECT_THROW(opts.get_double("rate", 0.0), std::invalid_argument);
  EXPECT_THROW(opts.get_double("exp", 0.0), std::invalid_argument);
  EXPECT_THROW(opts.get_double("empty", 0.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(opts.get_double("ok", 0.0), 0.25);
  EXPECT_DOUBLE_EQ(opts.get_double("sci", 0.0), 1e-3);
  EXPECT_DOUBLE_EQ(opts.get_double("missing", 2.5), 2.5);
}

TEST(Options, MergeDefaultsPrefersExplicitValues) {
  Options cli = parse_args({"threads=4", "json=out.json"});
  const std::string path = testing::TempDir() + "nocbt_options_merge.cfg";
  std::ofstream(path) << "threads=1\npackets=256\n";
  cli.merge_defaults(Options::parse_file(path));
  EXPECT_EQ(cli.get_int("threads", 0), 4);    // CLI wins
  EXPECT_EQ(cli.get_int("packets", 0), 256);  // file fills the gap
  EXPECT_EQ(cli.get_string("json", ""), "out.json");
}

}  // namespace
}  // namespace nocbt
