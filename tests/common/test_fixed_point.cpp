// Unit tests for the Q-format fixed-point codec used for "fixed-8" traffic.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/bitops.h"
#include "common/fixed_point.h"

namespace nocbt {
namespace {

TEST(FixedPoint, ConstructorValidatesArguments) {
  // bits = 0 is the nastiest case: before the width gate moved ahead of
  // the member-init list, `1 << (bits - 1)` shifted by 4294967295 (UB,
  // caught by UBSan) before the constructor body could throw.
  EXPECT_THROW(FixedPointCodec(0, 1.0), std::invalid_argument);
  EXPECT_THROW(FixedPointCodec(1, 1.0), std::invalid_argument);
  EXPECT_THROW(FixedPointCodec(17, 1.0), std::invalid_argument);
  EXPECT_THROW(FixedPointCodec(8, 0.0), std::invalid_argument);
  EXPECT_THROW(FixedPointCodec(8, -1.0), std::invalid_argument);
  EXPECT_NO_THROW(FixedPointCodec(8, 0.01));
  EXPECT_NO_THROW(FixedPointCodec(2, 1.0));
  EXPECT_NO_THROW(FixedPointCodec(16, 1.0));
}

TEST(FixedPoint, CalibrateValidatesBitsBeforeShifting) {
  // calibrate used to compute (1 << (bits - 1)) before constructing the
  // codec, hitting the same UB for out-of-range widths.
  std::vector<float> values = {0.5f, -0.25f};
  EXPECT_THROW(FixedPointCodec::calibrate(0, values), std::invalid_argument);
  EXPECT_THROW(FixedPointCodec::calibrate(1, values), std::invalid_argument);
  EXPECT_THROW(FixedPointCodec::calibrate(17, values), std::invalid_argument);
}

TEST(FixedPoint, EightBitRangeIsSymmetric) {
  FixedPointCodec codec(8, 1.0);
  EXPECT_EQ(codec.max_code(), 127);
  EXPECT_EQ(codec.min_code(), -127);
}

TEST(FixedPoint, QuantizeRoundsToNearest) {
  FixedPointCodec codec(8, 1.0);
  EXPECT_EQ(codec.quantize(0.0), 0);
  EXPECT_EQ(codec.quantize(1.4), 1);
  EXPECT_EQ(codec.quantize(1.6), 2);
  EXPECT_EQ(codec.quantize(-1.4), -1);
  EXPECT_EQ(codec.quantize(-1.6), -2);
}

TEST(FixedPoint, QuantizeSaturates) {
  FixedPointCodec codec(8, 1.0);
  EXPECT_EQ(codec.quantize(1000.0), 127);
  EXPECT_EQ(codec.quantize(-1000.0), -127);
}

TEST(FixedPoint, PatternIsTwosComplement) {
  FixedPointCodec codec(8, 1.0);
  EXPECT_EQ(codec.to_pattern(0), 0x00u);
  EXPECT_EQ(codec.to_pattern(1), 0x01u);
  EXPECT_EQ(codec.to_pattern(-1), 0xFFu);
  EXPECT_EQ(codec.to_pattern(127), 0x7Fu);
  EXPECT_EQ(codec.to_pattern(-127), 0x81u);
}

TEST(FixedPoint, PatternRoundTrip) {
  FixedPointCodec codec(8, 0.5);
  for (std::int32_t code = -127; code <= 127; ++code) {
    EXPECT_EQ(codec.from_pattern(codec.to_pattern(code)), code);
  }
}

TEST(FixedPoint, DequantizeScales) {
  FixedPointCodec codec(8, 0.25);
  EXPECT_DOUBLE_EQ(codec.dequantize(4), 1.0);
  EXPECT_DOUBLE_EQ(codec.dequantize(-4), -1.0);
}

TEST(FixedPoint, QuantizeDequantizeErrorBoundedByHalfScale) {
  FixedPointCodec codec(8, 0.01);
  for (double v = -1.2; v <= 1.2; v += 0.013) {
    const double recovered = codec.dequantize(codec.quantize(v));
    if (std::fabs(v) <= 127 * 0.01) {
      EXPECT_LE(std::fabs(recovered - v), 0.005 + 1e-12) << "v=" << v;
    }
  }
}

TEST(FixedPoint, CalibrateMapsMaxAbsToMaxCode) {
  std::vector<float> values = {0.1f, -0.8f, 0.4f};
  const auto codec = FixedPointCodec::calibrate(8, values);
  EXPECT_EQ(codec.quantize(-0.8), -127);
  EXPECT_EQ(codec.quantize(0.8), 127);
}

TEST(FixedPoint, CalibrateAllZerosFallsBackToUnitScale) {
  std::vector<float> values = {0.0f, 0.0f};
  const auto codec = FixedPointCodec::calibrate(8, values);
  EXPECT_DOUBLE_EQ(codec.scale(), 1.0);
}

TEST(FixedPoint, NegativeSmallValuesHaveManyOnes) {
  // Two's complement: -1 is 0xFF (8 ones) while +1 is 0x01 (1 one). This
  // asymmetry is what makes popcount ordering so effective on trained,
  // zero-centered weights (paper Table I, fixed-8 trained: 55.71%).
  FixedPointCodec codec(8, 1.0);
  EXPECT_EQ(popcount8(static_cast<std::uint8_t>(codec.to_pattern(-1))), 8);
  EXPECT_EQ(popcount8(static_cast<std::uint8_t>(codec.to_pattern(1))), 1);
  EXPECT_EQ(popcount8(static_cast<std::uint8_t>(codec.to_pattern(-2))), 7);
}

TEST(FixedPoint, QuantizeAllProducesOnePatternPerValue) {
  FixedPointCodec codec(8, 1.0);
  std::vector<float> values = {0.0f, 1.0f, -1.0f, 127.0f};
  const auto patterns = quantize_all(codec, values);
  ASSERT_EQ(patterns.size(), 4u);
  EXPECT_EQ(patterns[0], 0x00u);
  EXPECT_EQ(patterns[1], 0x01u);
  EXPECT_EQ(patterns[2], 0xFFu);
  EXPECT_EQ(patterns[3], 0x7Fu);
}

TEST(FixedPoint, FourBitCodec) {
  FixedPointCodec codec(4, 1.0);
  EXPECT_EQ(codec.max_code(), 7);
  EXPECT_EQ(codec.to_pattern(-1), 0xFu);
  EXPECT_EQ(codec.from_pattern(0xFu), -1);
  EXPECT_EQ(codec.quantize(100.0), 7);
}

}  // namespace
}  // namespace nocbt
