// Tests for the minimal streaming JSON writer behind the campaign reports.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/json_writer.h"

namespace nocbt {
namespace {

TEST(JsonWriter, EmptyObjectAndArray) {
  EXPECT_EQ(JsonWriter().begin_object().end_object().take(), "{}");
  EXPECT_EQ(JsonWriter().begin_array().end_array().take(), "[]");
}

TEST(JsonWriter, FlatObject) {
  JsonWriter json;
  json.begin_object()
      .key("name").value("smoke")
      .key("count").value(std::uint64_t{3})
      .key("offset").value(std::int64_t{-7})
      .key("ratio").value(0.5)
      .key("ok").value(true)
      .key("missing").null()
      .end_object();
  EXPECT_EQ(json.take(),
            R"({"name":"smoke","count":3,"offset":-7,"ratio":0.5,"ok":true,"missing":null})");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter json;
  json.begin_object()
      .key("rows").begin_array()
      .begin_object().key("id").value(std::uint64_t{1}).end_object()
      .begin_object().key("id").value(std::uint64_t{2}).end_object()
      .end_array()
      .key("tags").begin_array().value("a").value("b").end_array()
      .end_object();
  EXPECT_EQ(json.take(),
            R"({"rows":[{"id":1},{"id":2}],"tags":["a","b"]})");
}

TEST(JsonWriter, TopLevelScalar) {
  EXPECT_EQ(JsonWriter().value("alone").take(), R"("alone")");
  EXPECT_EQ(JsonWriter().value(std::int64_t{42}).take(), "42");
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonWriter::escape("caf\xc3\xa9"), "caf\xc3\xa9");  // UTF-8 intact
}

TEST(JsonWriter, EscapesKeysAndValues) {
  JsonWriter json;
  json.begin_object().key("a\"b").value("c\nd").end_object();
  EXPECT_EQ(json.take(), "{\"a\\\"b\":\"c\\nd\"}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.begin_array()
      .value(std::numeric_limits<double>::quiet_NaN())
      .value(std::numeric_limits<double>::infinity())
      .value(1.25)
      .end_array();
  EXPECT_EQ(json.take(), "[null,null,1.25]");
}

TEST(JsonWriter, DoubleRoundTripsPrecision) {
  JsonWriter json;
  json.value(0.1234567890123456789);
  const std::string text = json.take();
  EXPECT_EQ(std::stod(text), 0.1234567890123456789);
}

TEST(JsonWriter, MisuseThrows) {
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.value("no key"), std::logic_error);
  }
  {
    JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.key("key in array"), std::logic_error);
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.end_array(), std::logic_error);
  }
  {
    JsonWriter json;
    json.begin_object().key("a");
    EXPECT_THROW(json.key("b"), std::logic_error);
    EXPECT_THROW(json.end_object(), std::logic_error);  // dangling key
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.take(), std::logic_error);  // unfinished document
  }
  {
    JsonWriter json;
    json.value(1.0);
    EXPECT_THROW(json.value(2.0), std::logic_error);  // second top-level value
  }
}

}  // namespace
}  // namespace nocbt
