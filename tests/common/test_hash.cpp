// Tests for the stable hashing utility the campaign service keys its
// content-addressed cache and resume journals on. The known-answer digests
// pin the algorithm: a change here is a cache-format break (every
// persisted store and journal silently misses), so these values must only
// ever change together with a deliberate format-version bump.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>

#include "common/hash.h"

namespace nocbt {
namespace {

TEST(Fnv1a64, KnownAnswers) {
  // Published FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64_hex(""), "cbf29ce484222325");
  EXPECT_EQ(fnv1a64_hex("nocbt"), "9ee72e71ee8664fd");
}

TEST(StableHash, KnownAnswerDigestsArePinned) {
  EXPECT_EQ(StableHash().hex(), "6c62272e07bb0142cbf29ce484222325");
  StableHash name;
  name.add("nocbt");
  EXPECT_EQ(name.hex(), "1ec228956fedc309f86cbad6d6d06ea2");
  StableHash mixed;
  mixed.add("nocbt-scenario-v1");
  mixed.add(std::uint64_t{42});
  mixed.add(true);
  mixed.add(1.5);
  EXPECT_EQ(mixed.hex(), "80d92f67b01c6a9a70e544ba7799b031");
}

TEST(StableHash, HexIs32LowercaseHexChars) {
  StableHash h;
  h.add("anything");
  const std::string hex = h.hex();
  ASSERT_EQ(hex.size(), 32u);
  for (const char c : hex)
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)) &&
                !std::isupper(static_cast<unsigned char>(c)))
        << hex;
}

TEST(StableHash, FeedingIsDeterministic) {
  StableHash a, b;
  for (StableHash* h : {&a, &b}) {
    h->add("key");
    h->add(std::int64_t{-7});
    h->add(0.25);
    h->add(false);
  }
  EXPECT_EQ(a.hex(), b.hex());
}

TEST(StableHash, StringsAreLengthPrefixed) {
  // Without length prefixes "ab"+"c" and "a"+"bc" would collide.
  StableHash a, b;
  a.add("ab");
  a.add("c");
  b.add("a");
  b.add("bc");
  EXPECT_NE(a.hex(), b.hex());
}

TEST(StableHash, FieldOrderMatters) {
  StableHash a, b;
  a.add("x");
  a.add("y");
  b.add("y");
  b.add("x");
  EXPECT_NE(a.hex(), b.hex());
}

TEST(StableHash, IntegerAndDoubleFeedsAreDistinct) {
  StableHash a, b;
  a.add(std::uint64_t{1});
  b.add(1.0);
  EXPECT_NE(a.hex(), b.hex());
}

TEST(StableHash, NegativeZeroNormalizesToZero) {
  // -0.0 == 0.0 but differs in bit pattern; the hash must treat equal
  // doubles as equal keys or identical scenarios would split across
  // cache entries.
  StableHash a, b;
  a.add(0.0);
  b.add(-0.0);
  EXPECT_EQ(a.hex(), b.hex());
}

TEST(StableHash, SingleBitChangesTheDigest) {
  StableHash a, b;
  a.add(std::uint64_t{0x10});
  b.add(std::uint64_t{0x11});
  EXPECT_NE(a.hex(), b.hex());
}

}  // namespace
}  // namespace nocbt
