// Run the DarkNet-like model (64x64x3 input, conv/leaky-relu/maxpool stack)
// on the NOC-DNA and compare all three ordering configurations in one go.
//
//   $ ./darknet_on_noc                      # 4x4 mesh, 2 MCs, fixed-8
//   $ ./darknet_on_noc rows=8 cols=8 mcs=8 format=float32

#include <cstdio>

#include "accel/platform.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/table.h"
#include "dnn/models.h"
#include "dnn/synthetic_data.h"

using namespace nocbt;
using ordering::OrderingMode;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const auto rows = static_cast<std::int32_t>(opts.get_int("rows", 4));
  const auto cols = static_cast<std::int32_t>(opts.get_int("cols", 4));
  const auto mcs = static_cast<std::int32_t>(opts.get_int("mcs", 2));
  const DataFormat format =
      parse_data_format(opts.get_string("format", "fixed8"));

  Rng rng(opts.get_int("seed", 43));
  dnn::Sequential model = dnn::build_darknet_small(rng);
  dnn::fill_weights_trained_like(model, rng, 0.04);

  dnn::SyntheticDataset::Config data_cfg;
  data_cfg.channels = 3;
  data_cfg.height = 64;
  data_cfg.width = 64;
  dnn::SyntheticDataset data(data_cfg, 8);
  const dnn::Tensor input = data.sample(1).images;

  std::printf("DarkNetSmall on a %dx%d NoC with %d MCs, %s\n\n", rows, cols,
              mcs, to_string(format).c_str());
  AsciiTable table({"Ordering", "BT total", "Reduction", "Cycles",
                    "Data packets"});
  std::uint64_t baseline_bt = 0;
  for (OrderingMode mode : {OrderingMode::kBaseline, OrderingMode::kAffiliated,
                            OrderingMode::kSeparated}) {
    accel::AccelConfig cfg =
        accel::AccelConfig::defaults(format, mode, rows, cols, mcs);
    accel::NocDnaPlatform platform(cfg, model);
    const accel::InferenceResult result = platform.run(input);
    if (mode == OrderingMode::kBaseline) baseline_bt = result.bt_total;
    table.add_row(
        {std::string(ordering::to_string(mode)),
         std::to_string(result.bt_total),
         format_percent(1.0 - static_cast<double>(result.bt_total) /
                                  static_cast<double>(baseline_bt)),
         std::to_string(result.total_cycles),
         std::to_string(result.data_packets)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nSeparated-ordering (O2) should show the deepest reduction —");
  std::puts("it reorders the input half of every flit as well as the weights.");
  return 0;
}
