// resnet_placed_sweep: ordering-mode deltas on a *placed* ResNet-style
// model across NoC sizes. Unlike darknet_sweep (full inferences through
// NocDnaPlatform), this drives the src/place pipeline: the zoo ResNet is
// sharded across PE tiles, the placement engine derives the MC->PE weight
// and ifmap streams plus the PE->PE partial-sum/skip flows, and the
// campaign engine measures baseline-vs-ordered bit transitions over that
// real layer traffic — per mesh and per ordering mode.
//
//   $ ./resnet_placed_sweep                      # 8x8 + 16x16, fx8, O1 vs O2
//   $ ./resnet_placed_sweep modes=O2,bucket placement=nearmc tiles=16
//   $ ./resnet_placed_sweep meshes=8x8mc4 format=float32 json=placed.json
//
// Knobs: meshes= (RxC[mcN] list), modes=, format=, placement= (rowmajor |
// snake | nearmc), tiles= (PE tiles per layer), window=, threads=, seed=,
// model_seed=, engine=auto|active|fullscan|analytical, csv=/json=/profile=
// report files, progress=0|1.

#include <cstdio>
#include <exception>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/table.h"
#include "sim/campaign.h"
#include "sim/campaign_executor.h"
#include "sim/campaign_report.h"

using namespace nocbt;

namespace {

void check_known_keys(const Options& opts) {
  static const std::set<std::string> known{
      "meshes",  "modes",   "format",  "placement", "tiles",
      "window",  "threads", "seed",    "model_seed", "engine",
      "csv",     "json",    "profile", "progress"};
  for (const auto& [key, value] : opts.values())
    if (known.count(key) == 0)
      throw std::invalid_argument("unknown option '" + key +
                                  "' (see the header comment for the knobs)");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opts = Options::parse(argc, argv);
    check_known_keys(opts);

    sim::CampaignSpec camp;
    camp.name = "resnet-placed-sweep";
    camp.root_seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));
    camp.generators = {sim::GeneratorKind::kPlacement};
    camp.formats = {parse_data_format(opts.get_string("format", "fixed8"))};
    camp.modes =
        ordering::parse_ordering_mode_list(opts.get_string("modes", "O1,O2"));
    camp.windows = {
        static_cast<std::uint32_t>(opts.get_int("window", 64))};
    camp.meshes.clear();
    for (const auto& m :
         split_csv_list(opts.get_string("meshes", "8x8mc4,16x16mc8")))
      camp.meshes.push_back(sim::parse_mesh_spec(m));

    camp.base.model = "resnet";
    camp.base.placement = opts.get_string("placement", "rowmajor");
    const std::int64_t tiles = opts.get_int("tiles", 8);
    if (tiles < 1 || tiles > (1 << 20))
      throw std::invalid_argument("tiles= must be in [1, 2^20]");
    camp.base.tiles_per_layer = static_cast<std::int32_t>(tiles);
    camp.base.model_seed =
        static_cast<std::uint64_t>(opts.get_int("model_seed", 43));
    // Placement schedules are congestion-free on single-source phases, so
    // "auto" lets small meshes resolve analytically and falls back to the
    // active-set cycle engine where contention is possible.
    sim::apply_engine_choice(
        camp.base, sim::parse_engine_choice(opts.get_string("engine", "auto")));

    const auto scenarios = camp.expand();
    std::printf("resnet_placed_sweep: %zu scenario(s), placement=%s tiles=%d\n",
                scenarios.size(), camp.base.placement.c_str(),
                camp.base.tiles_per_layer);

    sim::RunnerConfig runner;
    runner.threads = static_cast<unsigned>(opts.get_int("threads", 2));
    if (runner.threads < 1 || runner.threads > 256)
      throw std::invalid_argument("threads= must be in [1, 256]");
    if (opts.get_bool("progress", true)) {
      runner.on_result = [](const sim::ScenarioResult& row, std::size_t done,
                            std::size_t total) {
        std::printf("  [%zu/%zu] %-32s %s (%.0f ms)\n", done, total,
                    row.spec.name.c_str(),
                    row.error.empty() ? "ok" : row.error.c_str(),
                    row.wall_ms_baseline + row.wall_ms_ordered);
        std::fflush(stdout);
      };
    }
    const sim::CampaignResult result = sim::run_campaign(camp, runner);

    // Mode-delta table: every mode row of one mesh shares the same
    // pre-ordering placed schedule (campaign-level schedule cache), so the
    // O0 BT column repeats within a mesh and the reductions are directly
    // comparable ordering deltas.
    AsciiTable table({"scenario", "O0 BT", "ordered BT", "reduction",
                      "cycles", "engine", "energy (pJ)"});
    for (const sim::ScenarioResult& row : result.rows) {
      if (!row.error.empty()) {
        table.add_row({row.spec.name, "-", "-", "-", "-", "-",
                       "error: " + row.error});
        continue;
      }
      table.add_row({row.spec.name, std::to_string(row.bt_baseline),
                     std::to_string(row.bt_ordered),
                     format_percent(row.reduction),
                     std::to_string(row.cycles),
                     std::string(noc::to_string(row.sim.engine)),
                     format_double(row.energy_pj, 1)});
    }
    std::fputs(table.render().c_str(), stdout);

    const std::string csv_path = opts.get_string("csv", "");
    if (!csv_path.empty()) {
      sim::write_csv_report(csv_path, camp, result);
      std::printf("wrote CSV report to %s\n", csv_path.c_str());
    }
    const std::string json_path = opts.get_string("json", "");
    if (!json_path.empty()) {
      sim::write_json_report(json_path, camp, result);
      std::printf("wrote JSON report to %s\n", json_path.c_str());
    }
    const std::string profile_path = opts.get_string("profile", "");
    if (!profile_path.empty()) {
      sim::write_profile_csv(profile_path, camp, result);
      std::printf("wrote step-loop profile CSV to %s\n", profile_path.c_str());
    }

    std::size_t failed = 0;
    for (const auto& row : result.rows)
      if (!row.error.empty()) ++failed;
    if (failed > 0) {
      std::printf("%zu of %zu scenarios failed\n", failed, result.rows.size());
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "resnet_placed_sweep: %s\n", e.what());
    return 2;
  }
}
