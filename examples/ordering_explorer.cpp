// Explore how BT reduction depends on the data distribution, the ordering
// strategy, and the window size — an interactive companion to the paper's
// Table I. Every registered OrderingStrategy appears as a column, so a
// strategy added to the registry shows up here with no further wiring.
//
//   $ ./ordering_explorer                        # all distributions
//   $ ./ordering_explorer dist=laplace format=fixed8 window=128

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/bt_count.h"
#include "analysis/stream_experiment.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/table.h"
#include "ordering/strategy.h"

using namespace nocbt;

namespace {

std::vector<float> make_values(const std::string& dist, std::size_t n,
                               Rng& rng) {
  std::vector<float> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (dist == "uniform")
      out.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
    else if (dist == "laplace")
      out.push_back(static_cast<float>(rng.laplace(0.05)));
    else if (dist == "gaussian")
      out.push_back(static_cast<float>(rng.normal(0.0, 0.3)));
    else if (dist == "sparse")
      out.push_back(rng.flip(0.7) ? 0.0f
                                  : static_cast<float>(rng.uniform(0.0, 1.0)));
    else if (dist == "bimodal")
      out.push_back(static_cast<float>(rng.flip(0.5) ? rng.uniform(0.9, 1.0)
                                                     : rng.uniform(-1.0, -0.9)));
    else
      throw std::invalid_argument("unknown dist: " + dist);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const auto n = static_cast<std::size_t>(opts.get_int("values", 65536));
  const auto window = static_cast<std::size_t>(opts.get_int("window", 256));
  const unsigned vpf = static_cast<unsigned>(opts.get_int("values_per_flit", 8));
  const DataFormat format =
      parse_data_format(opts.get_string("format", "fixed8"));

  std::vector<std::string> dists;
  if (opts.has("dist"))
    dists.push_back(opts.get_string("dist", ""));
  else
    dists = {"uniform", "gaussian", "laplace", "sparse", "bimodal"};

  std::printf("format=%s  window=%zu values  flit=%u values  n=%zu\n\n",
              to_string(format).c_str(), window, vpf, n);
  const auto strategies = ordering::registered_strategies();
  std::vector<std::string> headers{"Distribution", "BT/flit O0"};
  for (const auto* s : strategies) {
    if (s->name() == "arrival") continue;  // that IS the O0 column
    headers.push_back(std::string(s->name()) + " red.");
  }
  AsciiTable table(headers);
  Rng rng(opts.get_int("seed", 3));
  for (const auto& dist : dists) {
    const auto values = make_values(dist, n, rng);
    const auto stream = analysis::make_patterns(values, format);
    const auto base = analysis::pattern_stream_bt(stream.patterns, format, vpf);
    std::vector<std::string> cells{dist, format_double(base.bt_per_flit(), 2)};
    for (const auto* s : strategies) {
      if (s->name() == "arrival") continue;
      const auto ordered = analysis::pattern_stream_bt(
          ordering::order_stream_with(*s, stream.patterns, format, window),
          format, vpf);
      cells.push_back(
          format_percent(1.0 - ordered.bt_per_flit() / base.bt_per_flit()));
    }
    table.add_row(cells);
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nZero-concentrated (laplace/sparse) and bimodal data order best;");
  std::puts("uniform random bits are nearly incompressible by any reordering.");
  return 0;
}
