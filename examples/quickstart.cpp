// Quickstart: the core idea in 60 lines.
//
// Take a buffer of values, quantize them to fixed-8 wire patterns, pack
// them into flits, and compare the bit transitions of the natural order
// against the paper's descending-popcount ordering.
//
//   $ ./quickstart                 # defaults
//   $ ./quickstart values=4096 window=256 format=fixed8

#include <cstdio>
#include <vector>

#include "analysis/bt_count.h"
#include "analysis/stream_experiment.h"
#include "common/config.h"
#include "common/rng.h"
#include "ordering/ordering.h"

using namespace nocbt;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const auto n = static_cast<std::size_t>(opts.get_int("values", 4096));
  const auto window = static_cast<std::size_t>(opts.get_int("window", 256));
  const DataFormat format =
      parse_data_format(opts.get_string("format", "fixed8"));
  const unsigned values_per_flit =
      static_cast<unsigned>(opts.get_int("values_per_flit", 8));

  // A zero-concentrated value stream, like trained DNN weights.
  Rng rng(opts.get_int("seed", 1));
  std::vector<float> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    values.push_back(static_cast<float>(rng.laplace(0.05)));

  // Values -> wire patterns (IEEE-754 bits or 8-bit two's complement).
  const analysis::PatternStream stream = analysis::make_patterns(values, format);

  // The paper's transformation: within each window (one packet), reorder
  // values by descending '1'-bit count.
  const auto ordered =
      ordering::order_stream_descending(stream.patterns, format, window);

  // Count bit transitions between consecutive flits, before and after.
  const auto baseline =
      analysis::pattern_stream_bt(stream.patterns, format, values_per_flit);
  const auto treated =
      analysis::pattern_stream_bt(ordered, format, values_per_flit);

  std::printf("values=%zu  format=%s  window=%zu values  flit=%u values\n", n,
              to_string(format).c_str(), window, values_per_flit);
  std::printf("BT per flit, natural order : %8.2f\n", baseline.bt_per_flit());
  std::printf("BT per flit, popcount order: %8.2f\n", treated.bt_per_flit());
  std::printf("reduction                  : %8.2f%%\n",
              100.0 * (1.0 - treated.bt_per_flit() / baseline.bt_per_flit()));
  std::puts("\nFewer bit transitions means lower NoC link power - and because");
  std::puts("convolution is order-invariant, no decoder is needed at the PE.");
  return 0;
}
