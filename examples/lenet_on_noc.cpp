// Run a full LeNet-5 inference on the simulated NoC-based DNN accelerator
// and report bit transitions, latency, and traffic — then verify the
// NoC-computed logits against direct host inference (order invariance in
// action).
//
//   $ ./lenet_on_noc                         # 4x4 mesh, 2 MCs, O2, fixed-8
//   $ ./lenet_on_noc rows=8 cols=8 mcs=4 mode=O1 format=float32

#include <cstdio>

#include "accel/platform.h"
#include "common/config.h"
#include "common/rng.h"
#include "dnn/models.h"
#include "dnn/synthetic_data.h"

using namespace nocbt;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const auto rows = static_cast<std::int32_t>(opts.get_int("rows", 4));
  const auto cols = static_cast<std::int32_t>(opts.get_int("cols", 4));
  const auto mcs = static_cast<std::int32_t>(opts.get_int("mcs", 2));
  const DataFormat format =
      parse_data_format(opts.get_string("format", "fixed8"));
  const ordering::OrderingMode mode =
      ordering::parse_ordering_mode(opts.get_string("mode", "O2"));

  // Model + one synthetic input image.
  Rng rng(opts.get_int("seed", 42));
  dnn::Sequential model = dnn::build_lenet(rng);
  dnn::fill_weights_trained_like(model, rng, 0.05);
  dnn::SyntheticDataset data(dnn::SyntheticDataset::Config{}, 7);
  const dnn::Tensor input = data.sample(1).images;

  // Host reference first (the model caches activations layer by layer).
  const dnn::Tensor host_logits = model.forward(input);

  // Platform run.
  accel::AccelConfig cfg =
      accel::AccelConfig::defaults(format, mode, rows, cols, mcs);
  accel::NocDnaPlatform platform(cfg, model);
  const accel::InferenceResult result = platform.run(input);

  std::printf("NoC %dx%d, %d MCs, %s, %s, %u-bit links\n", rows, cols, mcs,
              to_string(format).c_str(), ordering::to_string(mode).c_str(),
              cfg.noc.flit_payload_bits);
  std::printf("  inference latency : %llu cycles\n",
              static_cast<unsigned long long>(result.total_cycles));
  std::printf("  bit transitions   : %llu (in scope), %llu (all links)\n",
              static_cast<unsigned long long>(result.bt_total),
              static_cast<unsigned long long>(result.bt_all_links));
  std::printf("  packets           : %llu data + %llu results\n",
              static_cast<unsigned long long>(result.data_packets),
              static_cast<unsigned long long>(result.result_packets));
  std::printf("  mean packet hops  : %.2f, mean latency %.1f cycles\n",
              result.noc_stats.packet_hops.mean(),
              result.noc_stats.packet_latency.mean());

  std::puts("\n  per-layer phases:");
  for (const auto& layer : result.layers)
    std::printf("    %-18s %6llu tasks  %8llu flits  %9llu BT  %7llu cycles\n",
                layer.layer_name.c_str(),
                static_cast<unsigned long long>(layer.tasks),
                static_cast<unsigned long long>(layer.data_flits),
                static_cast<unsigned long long>(layer.bt),
                static_cast<unsigned long long>(layer.cycles));

  std::puts("\n  logits (NoC vs host):");
  double max_err = 0.0;
  for (std::int32_t c = 0; c < 10; ++c) {
    const double noc = result.output.at(0, c, 0, 0);
    const double host = host_logits.at(0, c, 0, 0);
    max_err = std::max(max_err, std::abs(noc - host));
    std::printf("    class %d: %9.4f vs %9.4f\n", c, noc, host);
  }
  if (format == DataFormat::kFloat32)
    std::printf("  max |error| = %.2e (float re-association only)\n", max_err);
  else
    std::printf("  max |error| = %.4f (8-bit quantization)\n", max_err);
  return 0;
}
