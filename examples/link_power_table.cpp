// link_power_table: the paper's §V-C link-power table, twice over.
//
// Part 1 (static): the toggle-fraction estimate with link count and width
// derived from a live NocConfig instead of hardcoded 8x8 constants. For
// the paper's setup (8x8 mesh, 128-bit links, 125 MHz, half the wires
// toggling) this must land exactly on the published anchors:
//   0.173 pJ -> 155.008 mW   (Innovus-extracted link model)
//   0.532 pJ -> 476.672 mW   (Banerjee et al.)
// and the 40.85% BT reduction scales them to 91.688 / 281.951 mW.
//
// Part 2 (measured): a real fixed-8 campaign on the same mesh, baseline
// vs ordered, with the recorded bit transitions converted to energy and
// average power through hw::EnergyModel — the closed-loop version of the
// same table. The run must show a nonzero power reduction.
//
// Knobs (key=value): rows= cols= packets= window= mode= rate=
//   energy_pj= freq_mhz= threads= seed=

#include <cmath>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <string>

#include "common/config.h"
#include "common/table.h"
#include "hw/energy_model.h"
#include "sim/campaign.h"
#include "sim/campaign_executor.h"

using namespace nocbt;

namespace {

/// |actual - expected| within slack; complains loudly otherwise.
bool check_anchor(const char* label, double actual, double expected) {
  if (std::fabs(actual - expected) <= 1e-6) return true;
  std::fprintf(stderr, "FAIL: %s = %.6f mW, expected %.6f mW\n", label, actual,
               expected);
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opts = Options::parse(argc, argv);
    const auto rows = static_cast<std::int32_t>(opts.get_int("rows", 8));
    const auto cols = static_cast<std::int32_t>(opts.get_int("cols", 8));
    const auto packets =
        static_cast<std::uint32_t>(opts.get_int("packets", 48));
    const auto window = static_cast<std::uint32_t>(opts.get_int("window", 64));
    const std::string mode_name = opts.get_string("mode", "O2");
    const double energy_pj =
        hw::parse_energy_point(opts.get_string("energy_pj", "innovus"));
    const double freq_mhz = opts.get_double("freq_mhz", 125.0);

    // --- Part 1: static §V-C table, link count derived from the mesh. ---
    std::puts("=== Sec. V-C link power: static toggle-fraction model ===\n");

    noc::NocConfig paper_mesh;  // the paper's setup: 8x8, 128-bit links
    paper_mesh.rows = 8;
    paper_mesh.cols = 8;
    paper_mesh.flit_payload_bits = 128;

    constexpr double kReduction = 0.4085;  // best DarkNet fixed-8 result
    bool anchors_ok = true;
    AsciiTable static_table({"Link model", "pJ/transition", "links",
                             "Power (mW)", "After 40.85% (mW)", "Paper"});
    const struct {
      const char* label;
      double pj;
      double expected_mw;
      const char* paper;
    } points[] = {
        {"Ours (Innovus-extracted)", hw::kInnovusEnergyPj, 155.008,
         "155.008 -> 91.688"},
        {"Banerjee et al. [6]", hw::kBanerjeeEnergyPj, 476.672,
         "476.672 -> 281.951"},
    };
    for (const auto& point : points) {
      const hw::EnergyModel model(hw::EnergyModelConfig{point.pj, 125.0});
      const hw::LinkPowerConfig cfg = model.static_estimate(paper_mesh);
      const double mw = hw::link_power_mw(cfg);
      static_table.add_row(
          {point.label, format_double(point.pj, 3),
           std::to_string(cfg.num_links), format_double(mw, 3),
           format_double(hw::link_power_with_reduction_mw(cfg, kReduction), 3),
           point.paper});
      anchors_ok = check_anchor(point.label, mw, point.expected_mw) &&
                   anchors_ok;
    }
    std::fputs(static_table.render().c_str(), stdout);
    if (!anchors_ok) return 1;

    // --- Part 2: measured power from a fixed-8 campaign on this mesh. ---
    std::printf(
        "\n=== Measured: fixed-8 %s campaign on %dx%d (%.3f pJ, %.0f MHz) "
        "===\n\n",
        mode_name.c_str(), rows, cols, energy_pj, freq_mhz);

    sim::CampaignSpec camp;
    camp.name = "link-power";
    camp.root_seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));
    camp.generators = {sim::GeneratorKind::kUniform};
    camp.formats = {DataFormat::kFixed8};
    camp.modes = {ordering::parse_ordering_mode(mode_name)};
    camp.meshes = {sim::MeshSpec{rows, cols, 2}};
    camp.windows = {window};
    camp.base.packets = packets;
    camp.base.injection_rate = opts.get_double("rate", 0.25);
    camp.base.energy_per_transition_pj = energy_pj;
    camp.base.frequency_mhz = freq_mhz;

    sim::RunnerConfig runner;
    runner.threads =
        static_cast<unsigned>(opts.get_int("threads", 2));
    const sim::CampaignResult result = sim::run_campaign(camp, runner);

    AsciiTable measured({"scenario", "O0 BT", "ordered BT", "reduction",
                         "O0 power (mW)", "ordered power (mW)", "saved (mW)"});
    bool reduced = true;
    for (const sim::ScenarioResult& row : result.rows) {
      if (!row.error.empty())
        throw std::runtime_error(row.spec.name + ": " + row.error);
      measured.add_row({row.spec.name, std::to_string(row.bt_baseline),
                        std::to_string(row.bt_ordered),
                        format_percent(row.reduction),
                        format_double(row.power_baseline_mw, 3),
                        format_double(row.power_mw, 3),
                        format_double(row.power_baseline_mw - row.power_mw,
                                      3)});
      // BT reduction and power reduction can disagree: powers average each
      // variant's transitions over its own drain time, so a faster-draining
      // ordered run can burn more watts despite fewer transitions. The
      // reproduction claims both, so gate on both.
      if (!(row.reduction > 0.0) ||
          !(row.power_mw < row.power_baseline_mw)) {
        std::fprintf(stderr,
                     "FAIL: %s shows no BT/power reduction (BT %.4f, "
                     "%.3f -> %.3f mW)\n",
                     row.spec.name.c_str(), row.reduction,
                     row.power_baseline_mw, row.power_mw);
        reduced = false;
      }
    }
    std::fputs(measured.render().c_str(), stdout);
    return reduced ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "link_power_table: %s\n", e.what());
    return 2;
  }
}
