// Produce the platform's "packet traffic trace" output (paper Fig. 7):
// run a small model on the NoC and dump one CSV row per delivered packet
// (id, src, dst, flits, inject/eject cycles, latency, hops), plus per-link
// BT utilization on stdout.
//
//   $ ./traffic_trace out=/tmp/trace.csv rows=4 cols=4 mcs=2

#include <cstdio>

#include "accel/platform.h"
#include "common/config.h"
#include "common/rng.h"
#include "dnn/activation.h"
#include "dnn/conv2d.h"
#include "dnn/linear.h"
#include "dnn/models.h"
#include "dnn/pooling.h"
#include "dnn/synthetic_data.h"

using namespace nocbt;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const std::string out_path =
      opts.get_string("out", "/tmp/nocbt_traffic_trace.csv");
  const auto rows = static_cast<std::int32_t>(opts.get_int("rows", 4));
  const auto cols = static_cast<std::int32_t>(opts.get_int("cols", 4));
  const auto mcs = static_cast<std::int32_t>(opts.get_int("mcs", 2));

  Rng rng(opts.get_int("seed", 5));
  dnn::Sequential model;
  model.emplace<dnn::Conv2d>(1, 8, 5, 1, 2);
  model.emplace<dnn::Relu>();
  model.emplace<dnn::MaxPool2d>(2);
  model.emplace<dnn::Flatten>();
  model.emplace<dnn::Linear>(8 * 16 * 16, 10);
  dnn::fill_weights_trained_like(model, rng, 0.05);

  dnn::SyntheticDataset data(dnn::SyntheticDataset::Config{}, 6);
  const dnn::Tensor input = data.sample(1).images;

  accel::AccelConfig cfg = accel::AccelConfig::defaults(
      DataFormat::kFixed8, ordering::OrderingMode::kSeparated, rows, cols, mcs);
  accel::NocDnaPlatform platform(cfg, model);
  const accel::InferenceResult result = platform.run(input);

  const std::size_t rows_written = result.trace.dump_csv(out_path);
  std::printf("wrote %zu packet records to %s\n", rows_written, out_path.c_str());
  std::printf("total: %llu cycles, %llu BT in scope\n",
              static_cast<unsigned long long>(result.total_cycles),
              static_cast<unsigned long long>(result.bt_total));

  // Top links by accumulated bit transitions (the hot wires).
  std::puts("\nbusiest links (by BT):");
  struct LinkRow {
    std::int32_t id;
    std::uint64_t bt;
  };
  // Re-run a fresh platform to access the recorder? Not needed: the result
  // keeps totals; for per-link detail we rebuild a small network run here.
  // (The InferenceResult intentionally stays small; per-link data lives in
  // the Network, so we surface the aggregate classes instead.)
  std::printf("  data+result flits delivered: %llu\n",
              static_cast<unsigned long long>(result.noc_stats.flits_delivered));
  std::printf("  mean packet latency: %.1f cycles, mean hops: %.2f\n",
              result.noc_stats.packet_latency.mean(),
              result.noc_stats.packet_hops.mean());
  std::printf("  BT per delivered flit: %.2f\n",
              static_cast<double>(result.bt_total) /
                  static_cast<double>(result.noc_stats.flits_delivered));
  return 0;
}
