// darknet_sweep: paper-scale DarkNet-class model sweeps across NoC sizes
// through the campaign engine — the Fig. 12/13 regime (large meshes, full
// inferences, baseline-vs-ordered BT) that motivated the active-set
// simulation engine. Each scenario runs two complete inferences of the
// DarkNet-like conv stack (one O0 baseline, one under the selected
// ordering) on its own network, and the report carries the BT reduction,
// measured link energy/power, and the step-loop profile (wall-clock,
// cycles, component skip ratio) per mesh.
//
//   $ ./darknet_sweep                       # 8x8 / 12x12 / 16x16, fixed-8, O2
//   $ ./darknet_sweep meshes=8x8mc4,16x16mc8 format=float32 mode=chain
//   $ ./darknet_sweep input=64 threads=3 profile=darknet_profile.csv
//
// Knobs: meshes= (RxC[mcN] list), format=, mode=, input= (square input side,
// default 64 as in §V-B; the smoke test uses 32), threads=, seed=,
// engine=auto|active|fullscan|analytical (models always run a cycle
// engine), csv=/json=/profile= report files, progress=0|1.

#include <cstdio>
#include <exception>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "common/table.h"
#include "dnn/models.h"
#include "dnn/synthetic_data.h"
#include "sim/campaign.h"
#include "sim/campaign_executor.h"
#include "sim/campaign_report.h"

using namespace nocbt;

namespace {

/// Reject unknown keys so a typo ('mesh=', 'formats=') fails loudly
/// instead of silently running the default sweep.
void check_known_keys(const Options& opts) {
  static const std::set<std::string> known{
      "meshes",  "format",     "mode",    "input",   "threads",
      "seed",    "model_seed", "input_seed",         "engine",
      "csv",     "json",       "profile", "progress"};
  for (const auto& [key, value] : opts.values())
    if (known.count(key) == 0)
      throw std::invalid_argument("unknown option '" + key +
                                  "' (see the header comment for the knobs)");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opts = Options::parse(argc, argv);
    check_known_keys(opts);
    const std::int64_t input_hw = opts.get_int("input", 64);
    if (input_hw < 8 || input_hw > 512)
      throw std::invalid_argument("input= must be in [8, 512]");

    sim::CampaignSpec camp;
    camp.name = "darknet-sweep";
    camp.root_seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));
    camp.generators = {sim::GeneratorKind::kModel};
    camp.formats = {parse_data_format(opts.get_string("format", "fixed8"))};
    camp.modes =
        ordering::parse_ordering_mode_list(opts.get_string("mode", "O2"));
    camp.meshes.clear();
    for (const auto& m : split_csv_list(
             opts.get_string("meshes", "8x8mc4,12x12mc4,16x16mc8")))
      camp.meshes.push_back(sim::parse_mesh_spec(m));
    // Model workloads always run a cycle engine; "auto"/"analytical" are
    // still accepted so sweep scripts can share one engine flag (validate()
    // rejects a forced analytical model run with a clear message).
    sim::apply_engine_choice(
        camp.base, sim::parse_engine_choice(opts.get_string("engine", "auto")));
    camp.base.model_seed =
        static_cast<std::uint64_t>(opts.get_int("model_seed", 43));
    camp.base.input_seed =
        static_cast<std::uint64_t>(opts.get_int("input_seed", 8));

    // DarkNet-class workload (§V-B): the scaled conv/leaky-relu/maxpool
    // stack with trained-like (zero-concentrated Laplace) weights over a
    // 3-channel square input.
    camp.hooks.model = [](std::uint64_t seed) {
      Rng rng(seed);
      dnn::Sequential model = dnn::build_darknet_small(rng);
      Rng fill_rng(seed + 1);
      dnn::fill_weights_trained_like(model, fill_rng, 0.04);
      return model;
    };
    camp.hooks.input = [input_hw](std::uint64_t seed) {
      dnn::SyntheticDataset::Config cfg;
      cfg.channels = 3;
      cfg.height = static_cast<std::int32_t>(input_hw);
      cfg.width = static_cast<std::int32_t>(input_hw);
      dnn::SyntheticDataset data(cfg, seed);
      return data.sample(1).images;
    };

    const auto scenarios = camp.expand();
    std::printf(
        "darknet_sweep: %zu scenario(s), %lldx%lldx3 input, %s engine\n",
        scenarios.size(), static_cast<long long>(input_hw),
        static_cast<long long>(input_hw),
        noc::to_string(camp.base.engine));

    sim::RunnerConfig runner;
    runner.threads = static_cast<unsigned>(opts.get_int("threads", 3));
    if (runner.threads < 1 || runner.threads > 256)
      throw std::invalid_argument("threads= must be in [1, 256]");
    if (opts.get_bool("progress", true)) {
      runner.on_result = [](const sim::ScenarioResult& row, std::size_t done,
                            std::size_t total) {
        std::printf("  [%zu/%zu] %-28s %s (%.0f ms)\n", done, total,
                    row.spec.name.c_str(),
                    row.error.empty() ? "ok" : row.error.c_str(),
                    row.wall_ms_baseline + row.wall_ms_ordered);
        std::fflush(stdout);
      };
    }
    const sim::CampaignResult result = sim::run_campaign(camp, runner);

    // Mesh-scaling table: BT reduction plus the engine's skip profile —
    // the larger the mesh, the larger the quiescent fraction the
    // active-set engine never touches.
    AsciiTable table({"scenario", "O0 BT", "ordered BT", "reduction",
                      "cycles", "skip ratio", "wall (ms)"});
    for (const sim::ScenarioResult& row : result.rows) {
      if (!row.error.empty()) {
        table.add_row({row.spec.name, "-", "-", "-", "-", "-",
                       "error: " + row.error});
        continue;
      }
      table.add_row({row.spec.name, std::to_string(row.bt_baseline),
                     std::to_string(row.bt_ordered),
                     format_percent(row.reduction),
                     std::to_string(row.cycles),
                     format_percent(row.sim.skip_ratio()),
                     format_double(row.wall_ms_baseline + row.wall_ms_ordered,
                                   1)});
    }
    std::fputs(table.render().c_str(), stdout);

    const std::string csv_path = opts.get_string("csv", "");
    if (!csv_path.empty()) {
      sim::write_csv_report(csv_path, camp, result);
      std::printf("wrote CSV report to %s\n", csv_path.c_str());
    }
    const std::string json_path = opts.get_string("json", "");
    if (!json_path.empty()) {
      sim::write_json_report(json_path, camp, result);
      std::printf("wrote JSON report to %s\n", json_path.c_str());
    }
    const std::string profile_path = opts.get_string("profile", "");
    if (!profile_path.empty()) {
      sim::write_profile_csv(profile_path, camp, result);
      std::printf("wrote step-loop profile CSV to %s\n", profile_path.c_str());
    }

    std::size_t failed = 0;
    for (const auto& row : result.rows)
      if (!row.error.empty()) ++failed;
    if (failed > 0) {
      std::printf("%zu of %zu scenarios failed\n", failed, result.rows.size());
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "darknet_sweep: %s\n", e.what());
    return 2;
  }
}
