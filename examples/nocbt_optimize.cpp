// nocbt_optimize: search-driven placement x ordering co-optimization from
// the command line.
//
// Picks the joint configuration {placement policy, ordering strategy,
// per-packet window, payload codec} that minimizes *measured* average link
// power for one zoo model on one mesh. Scoring goes through the campaign
// engine (engine=auto by default), so every number the search ranks by is
// the number a full sweep would report for the same configuration.
//
//   $ ./nocbt_optimize model=resnet meshes=8x8mc4 tiles_per_layer=8
//       optimizer=anneal evals=40 opt_seed=1 spec_out=best.conf
//       json=best.json report_out=search.txt
//   (one command line; wrapped here for readability)
//
// Search knobs:
//   optimizer=   anneal | greedy-coordinate | random (any registered name)
//   evals=       search-phase step budget (default 40)
//   opt_seed=    search randomness; independent of the campaign seed= so
//                the measured physics and the search walk decouple
//   sa_temp=     initial annealing temperature in mW (0 = auto: 2% of the
//                baseline incumbent's power)
//   sa_cool=     geometric cooling factor per step (default 0.95)
//   placements=  placement-policy axis (default: every registered policy)
//
// The measurement template comes from the same campaign keys nocbt_campaign
// reads (model=, meshes=, tiles_per_layer=, windows=, formats=, modes=,
// seed=, packets=, energy_pj=, engine=, ...): modes/windows/formats give
// the search axes, everything else is shared by all candidates. The
// generator is placement (forced; pass generators=placement or nothing),
// the mesh list must hold exactly one mesh, replicates must stay 1.
//
// The search first sweeps every mode at the baseline coordinates (first
// placement/window/format) — the classic single-mode sweep — and is
// guaranteed to end no worse than that sweep's best row.
//
// Outputs:
//   spec_out=    the winning configuration as a campaign spec file;
//                `nocbt_campaign config=FILE json=...` re-runs it and
//                reproduces the winner's measurements byte for byte
//   json=        the winner's single-row campaign JSON report (identical
//                bytes to re-running the emitted spec with json=)
//   report_out=  deterministic search report (baseline, trajectory, winner)
//
// Campaign service (see README "Campaign service"): `cache_dir=DIR` scores
// through the same content-addressed store nocbt_campaign uses — a
// candidate whose scenario was already measured (by an earlier search, a
// killed one, or a campaign sweep) is served from the cache instead of
// re-simulating. `resume=FILE` checkpoints every simulated evaluation to a
// journal and preloads it on the next run; a journal written under a
// different template or placement axis is refused. `shard=i/N` switches to
// cache-warming mode: evaluate the i-th deterministic slice of the
// enumerated candidate space into cache_dir/resume and exit without
// searching — run all N shards (concurrently, same cache_dir), then run
// the search itself with that warm cache and zero re-simulations.

#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/hash.h"
#include "opt/coopt.h"
#include "ordering/ordering.h"
#include "place/policy.h"
#include "sim/campaign_config.h"
#include "sim/campaign_report.h"
#include "sim/run_journal.h"
#include "sim/scenario_cache.h"

using namespace nocbt;

namespace {

const std::set<std::string> kOptimizerKeys{
    "config",  "optimizer", "evals",      "opt_seed", "sa_temp",
    "sa_cool", "placements", "spec_out",  "json",     "report_out",
    "progress"};

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << text;
  if (!out) throw std::runtime_error("write failed for " + path);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Options opts = Options::parse(argc, argv);
    if (opts.has("config")) {
      opts.merge_defaults(Options::parse_file(opts.get_string("config", "")));
    }
    std::set<std::string> extra = kOptimizerKeys;
    extra.insert(sim::campaign_service_option_keys().begin(),
                 sim::campaign_service_option_keys().end());
    sim::check_campaign_keys(opts, extra);

    sim::CampaignSpec base = sim::campaign_from_options(opts);
    if (opts.has("generators")) {
      if (base.generators.size() != 1 ||
          base.generators.front() != sim::GeneratorKind::kPlacement)
        throw std::invalid_argument(
            "nocbt_optimize searches placement workloads only "
            "(generators=placement)");
    } else {
      base.generators = {sim::GeneratorKind::kPlacement};
    }
    // Whole ordering-strategy axis by default; an explicit modes= narrows it.
    if (!opts.has("modes")) base.modes = ordering::all_ordering_modes();

    // Axis order matters: the first placement (and window/format) anchors
    // the baseline sweep the guard compares against.
    std::vector<std::string> placements = place::registered_policy_names();
    if (opts.has("placements"))
      placements = split_csv_list(opts.get_string("placements", ""));
    const opt::SearchSpace space =
        opt::SearchSpace::from_campaign(base, placements);

    opt::CoOptConfig config;
    config.optimizer = opts.get_string("optimizer", "anneal");
    config.seed = static_cast<std::uint64_t>(opts.get_int("opt_seed", 1));
    const std::int64_t evals = opts.get_int("evals", 40);
    if (evals < 0 || evals > 1'000'000)
      throw std::invalid_argument("option 'evals' must be in [0, 1000000]");
    config.max_evals = static_cast<std::uint32_t>(evals);
    config.sa_temp = opts.get_double("sa_temp", 0.0);
    config.sa_cooling = opts.get_double("sa_cool", 0.95);

    std::printf(
        "co-optimizing %s on %s: %zu-point space "
        "(%zu placements x %zu modes x %zu windows x %zu formats), "
        "optimizer=%s evals=%u opt_seed=%llu\n",
        base.base.model.c_str(), sim::to_string(base.meshes.front()).c_str(),
        space.size(), space.placements.size(), space.modes.size(),
        space.windows.size(), space.formats.size(), config.optimizer.c_str(),
        config.max_evals, static_cast<unsigned long long>(config.seed));

    // Campaign service: a shared content-addressed cache (memory-only when
    // cache_dir= is absent) plus an optional evaluation journal.
    const sim::ExecutionConfig exec = sim::execution_from_options(opts);
    auto cache = std::make_shared<sim::ScenarioCache>(exec.cache_dir);
    opt::Evaluator eval(base, cache);

    std::unique_ptr<sim::RunJournal> journal;
    if (!exec.journal_path.empty()) {
      // The journal's identity domain: the full measurement template (the
      // emitted spec text covers every knob) plus the placement axis.
      StableHash id;
      id.add("nocbt-coopt-v1");
      id.add(sim::campaign_config_text(base));
      for (const std::string& p : space.placements) id.add(p);
      const std::string search_hash = id.hex();
      sim::JournalContents prior = sim::read_journal(exec.journal_path);
      bool fresh = true;
      if (prior.exists && prior.header_ok) {
        if (prior.campaign_hash != search_hash)
          throw std::runtime_error(
              "journal '" + exec.journal_path + "' was written for search " +
              prior.campaign_hash + " but this template/placement axis "
              "hashes to " + search_hash +
              " — refusing to mix evaluations across differing searches "
              "(point resume= at a fresh file or rerun the original "
              "configuration)");
        for (const auto& [hash, row] : prior.rows)
          cache->insert_memory(hash, row);
        fresh = false;
      }
      for (const std::string& w : prior.warnings)
        std::fprintf(stderr, "nocbt_optimize: warning: %s\n", w.c_str());
      journal = std::make_unique<sim::RunJournal>(
          exec.journal_path, search_hash,
          static_cast<std::uint64_t>(space.size()), fresh);
    }
    std::uint64_t appended = 0;
    eval.on_measure = [&](const opt::Candidate&, const std::string& hash,
                          const sim::ScenarioResult& row) {
      if (journal) journal->append(hash, appended++, row);
    };

    // shard=i/N: cache-warming mode — evaluate this shard's deterministic
    // slice of the enumerated space (placement-major, format-minor order)
    // and exit without searching.
    if (exec.shard.count > 1) {
      if (exec.cache_dir.empty() && exec.journal_path.empty())
        throw std::invalid_argument(
            "shard= warms the shared cache, so it needs cache_dir=DIR "
            "and/or resume=FILE to persist its evaluations");
      std::size_t index = 0;
      std::size_t evaluated = 0;
      for (const std::string& placement : space.placements)
        for (const ordering::OrderingMode mode : space.modes)
          for (const std::uint32_t window : space.windows)
            for (const DataFormat format : space.formats) {
              if (index++ % exec.shard.count != exec.shard.index) continue;
              const opt::Candidate c{placement, mode, window, format};
              (void)eval.evaluate(c);
              ++evaluated;
            }
      std::printf(
          "shard %s: evaluated %zu of %zu candidates (%zu simulated, %zu "
          "shared-cache hits)\n",
          sim::to_string(exec.shard).c_str(), evaluated, space.size(),
          eval.runs(), eval.shared_hits());
      for (const std::string& w : cache->take_diagnostics())
        std::fprintf(stderr, "nocbt_optimize: warning: %s\n", w.c_str());
      return 0;
    }

    const opt::CoOptResult result = opt::run_coopt(eval, space, config);
    if (!exec.cache_dir.empty() || !exec.journal_path.empty())
      std::printf("campaign service: %zu simulated, %zu shared-cache hits\n",
                  eval.runs(), eval.shared_hits());
    for (const std::string& w : cache->take_diagnostics())
      std::fprintf(stderr, "nocbt_optimize: warning: %s\n", w.c_str());

    if (opts.get_bool("progress", true))
      std::fputs(opt::coopt_report(result).c_str(), stdout);
    else
      std::printf("baseline %s power_mw=%.6f\nbest     %s power_mw=%.6f\n",
                  opt::to_string(result.baseline).c_str(),
                  result.baseline_power_mw,
                  opt::to_string(result.best).c_str(), result.best_power_mw);

    const std::string spec_out = opts.get_string("spec_out", "");
    if (!spec_out.empty()) {
      sim::write_campaign_config(spec_out, result.winning);
      std::printf("wrote winning campaign spec to %s\n", spec_out.c_str());
    }
    const std::string json_path = opts.get_string("json", "");
    if (!json_path.empty()) {
      sim::CampaignResult rows;
      rows.rows.push_back(result.best_result);
      sim::write_json_report(json_path, result.winning, rows);
      std::printf("wrote winner JSON report to %s\n", json_path.c_str());
    }
    const std::string report_out = opts.get_string("report_out", "");
    if (!report_out.empty()) {
      write_text(report_out, opt::coopt_report(result));
      std::printf("wrote search report to %s\n", report_out.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nocbt_optimize: %s\n", e.what());
    return 2;
  }
}
