// nocbt_campaign: declarative scenario sweeps from the command line.
//
// Expands a parameter grid (generators x formats x modes x meshes x
// windows x replicates) into scenarios, runs them on a thread pool (one
// network per worker, deterministic per-scenario seeds), and reports an
// ASCII table plus optional CSV / JSON files.
//
//   $ ./nocbt_campaign generators=uniform,hotspot formats=float32,fixed8
//       modes=O0,O1,O2 meshes=4x4,8x8 windows=64 threads=4 json=report.json
//   (one command line; wrapped here for readability)
//
// `modes=` accepts every registered ordering strategy in addition to the
// paper's O0/O1/O2: `chain`, `hdchain`, `bucket`, `hybrid`, `twoflit`
// (each applied with affiliated pairing — see src/ordering/strategy.h and
// the README's "Ordering strategies" table).
//
// Every key can also come from a `config=FILE` key=value file (one pair
// per line, '#' comments); explicit command-line arguments win. Use
// `describe=1` to print the expanded scenario list without running it.
//
// Energy reporting (§V-C units): `energy_pj=` selects the pJ/transition
// point ("innovus" = 0.173, "banerjee" = 0.532, or a number) and
// `freq_mhz=` the link clock; every report then carries measured link
// energy (pJ) and average power (mW) per scenario. `heatmap=FILE` writes
// a per-link CSV (link id, kind, src->dst, flits, BT, energy) for
// hotspot analysis.
//
// Placement workloads (`generators=placement`): `model=` picks a zoo
// model (lenet | darknet | resnet | mobile | attention), `placement=` a
// placement policy (rowmajor | snake | nearmc), `tiles_per_layer=` the PE
// shards per layer. `trace_out=FILE` dumps the first scenario's
// pre-ordering injection schedule as a payload-carrying PacketTrace CSV;
// replaying it (`generators=replay trace=FILE`) on the same mesh, format
// and slots reproduces that scenario's BT/energy byte for byte.
//
// `engine=auto|active|fullscan|analytical` selects the simulation
// backend. "auto" (the default) evaluates each synthetic schedule with
// the zero-load analytical engine and keeps that result when it is proven
// exact (congestion-free), falling back to the active-set cycle engine
// otherwise; forcing "analytical" fails contended scenarios loudly, and
// the full-scan reference produces identical numbers to active, only
// slower — useful for differential runs. `profile=FILE` writes the
// step-loop profile CSV (actual engine run, wall-clock per variant,
// cycles stepped vs. idle-skipped, component steps run vs. skipped, skip
// ratio).

#include <cstdio>
#include <exception>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "dnn/models.h"
#include "dnn/synthetic_data.h"
#include "hw/energy_model.h"
#include "sim/campaign.h"
#include "sim/traffic_gen.h"

using namespace nocbt;

namespace {

/// get_int with a range gate, so a negative or absurd value fails with a
/// clear message instead of wrapping through an unsigned cast.
std::int64_t get_bounded(const Options& opts, const std::string& key,
                         std::int64_t fallback, std::int64_t lo,
                         std::int64_t hi) {
  const std::int64_t v = opts.get_int(key, fallback);
  if (v < lo || v > hi)
    throw std::invalid_argument("option '" + key + "' must be in [" +
                                std::to_string(lo) + ", " +
                                std::to_string(hi) + "], got " +
                                std::to_string(v));
  return v;
}

/// Reject unknown keys so a typo ('generator=', 'packts=') fails loudly
/// instead of silently running the sweep with defaults.
void check_known_keys(const Options& opts) {
  static const std::set<std::string> known{
      "config",   "name",       "seed",        "replicates", "generators",
      "formats",  "modes",      "meshes",      "windows",    "packets",
      "rate",     "vcs",        "vc_depth",    "slots",      "dist",
      "dist_a",   "dist_b",     "hotspot_fraction",          "hotspot_node",
      "burst_len", "burst_gap", "trace",       "model_seed", "input_seed",
      "max_cycles", "threads",  "progress",    "describe",   "csv",
      "json",     "energy_pj",  "freq_mhz",    "heatmap",    "engine",
      "profile",  "model",      "placement",   "tiles_per_layer",
      "trace_out"};
  for (const auto& [key, value] : opts.values())
    if (known.count(key) == 0)
      throw std::invalid_argument("unknown option '" + key +
                                  "' (see the header comment for the knobs)");
}

sim::CampaignSpec build_campaign(const Options& opts) {
  sim::CampaignSpec camp;
  camp.name = opts.get_string("name", "campaign");
  camp.root_seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));
  camp.replicates =
      static_cast<std::uint32_t>(get_bounded(opts, "replicates", 1, 1, 1024));

  camp.generators.clear();
  for (const auto& g : split_csv_list(opts.get_string("generators", "uniform")))
    camp.generators.push_back(sim::parse_generator_kind(g));
  camp.formats.clear();
  for (const auto& f : split_csv_list(opts.get_string("formats", "float32,fixed8")))
    camp.formats.push_back(parse_data_format(f));
  camp.modes =
      ordering::parse_ordering_mode_list(opts.get_string("modes", "O0,O1,O2"));
  camp.meshes.clear();
  for (const auto& m : split_csv_list(opts.get_string("meshes", "4x4")))
    camp.meshes.push_back(sim::parse_mesh_spec(m));
  camp.windows.clear();
  for (const auto& w : split_csv_list(opts.get_string("windows", "64"))) {
    std::int64_t parsed = -1;
    try {
      parsed = parse_int_strict(w);
    } catch (const std::exception&) {
      parsed = -1;
    }
    if (parsed < 0 || parsed > 1'000'000)
      throw std::invalid_argument("windows entry '" + w +
                                  "' is not in [0, 1000000]");
    camp.windows.push_back(static_cast<std::uint32_t>(parsed));
  }

  sim::ScenarioSpec& base = camp.base;
  base.packets =
      static_cast<std::uint32_t>(get_bounded(opts, "packets", 128, 1, 100'000'000));
  base.injection_rate = opts.get_double("rate", 0.25);
  base.num_vcs = static_cast<std::int32_t>(get_bounded(opts, "vcs", 4, 1, 64));
  base.vc_buffer_depth =
      static_cast<std::int32_t>(get_bounded(opts, "vc_depth", 4, 1, 1024));
  base.values_per_flit =
      static_cast<unsigned>(get_bounded(opts, "slots", 16, 2, 4096));
  base.value_dist = sim::parse_value_dist(opts.get_string("dist", "laplace"));
  base.dist_a = opts.get_double("dist_a", base.value_dist ==
                                                  sim::ValueDist::kUniform
                                              ? -1.0
                                              : 0.0);
  base.dist_b = opts.get_double("dist_b",
                                base.value_dist == sim::ValueDist::kUniform
                                    ? 1.0
                                    : 0.2);
  base.hotspot_fraction = opts.get_double("hotspot_fraction", 0.5);
  base.hotspot_node = static_cast<std::int32_t>(
      get_bounded(opts, "hotspot_node", -1, -1, 1 << 24));
  base.burst_len = static_cast<std::uint32_t>(
      get_bounded(opts, "burst_len", 8, 1, 1'000'000));
  base.burst_gap = static_cast<std::uint32_t>(
      get_bounded(opts, "burst_gap", 64, 0, 1'000'000'000));
  base.trace_path = opts.get_string("trace", "");
  base.energy_per_transition_pj =
      hw::parse_energy_point(opts.get_string("energy_pj", "innovus"));
  base.frequency_mhz = opts.get_double("freq_mhz", 125.0);
  if (!(base.frequency_mhz > 0.0))
    throw std::invalid_argument("option 'freq_mhz' must be positive");
  apply_engine_choice(base,
                      sim::parse_engine_choice(opts.get_string("engine", "auto")));
  base.model_seed = static_cast<std::uint64_t>(opts.get_int("model_seed", 42));
  base.input_seed = static_cast<std::uint64_t>(opts.get_int("input_seed", 7));
  base.model = opts.get_string("model", "lenet");
  base.placement = opts.get_string("placement", "rowmajor");
  base.tiles_per_layer = static_cast<std::int32_t>(
      get_bounded(opts, "tiles_per_layer", 4, 1, 1 << 20));
  base.max_cycles = static_cast<std::uint64_t>(get_bounded(
      opts, "max_cycles", 5'000'000, 1, std::int64_t{1} << 62));

  // Model workload: a small trained-like LeNet (no training — the weight
  // distribution is what matters for BT). Heavyweight trained models go
  // through the library API instead (see bench/fig12_noc_sizes.cpp).
  camp.hooks.model = [](std::uint64_t seed) {
    Rng rng(seed);
    dnn::Sequential model = dnn::build_lenet(rng);
    Rng fill_rng(seed + 1);
    dnn::fill_weights_trained_like(model, fill_rng, 0.04);
    return model;
  };
  camp.hooks.input = [](std::uint64_t seed) {
    dnn::SyntheticDataset data(dnn::SyntheticDataset::Config{}, seed);
    return data.sample(1).images;
  };
  return camp;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Options opts = Options::parse(argc, argv);
    if (opts.has("config")) {
      opts.merge_defaults(Options::parse_file(opts.get_string("config", "")));
    }
    check_known_keys(opts);

    const sim::CampaignSpec camp = build_campaign(opts);
    const auto scenarios = camp.expand();
    if (scenarios.empty())
      throw std::invalid_argument(
          "campaign expanded to 0 scenarios — check for an empty grid list "
          "(generators/formats/modes/meshes/windows) or replicates=0");
    std::printf("campaign '%s': %zu scenarios (root seed %llu)\n",
                camp.name.c_str(), scenarios.size(),
                static_cast<unsigned long long>(camp.root_seed));

    if (opts.get_bool("describe", false)) {
      for (const auto& s : scenarios)
        std::printf("  %-32s seed=%llu packets=%u rate=%.3f\n",
                    s.name.c_str(), static_cast<unsigned long long>(s.seed),
                    s.packets, s.injection_rate);
      return 0;
    }

    sim::RunnerConfig runner;
    runner.threads =
        static_cast<unsigned>(get_bounded(opts, "threads", 4, 1, 1024));
    if (opts.get_bool("progress", true)) {
      runner.on_result = [](const sim::ScenarioResult& row, std::size_t done,
                            std::size_t total) {
        std::printf("  [%zu/%zu] %-32s %s\n", done, total,
                    row.spec.name.c_str(),
                    row.error.empty() ? "ok" : row.error.c_str());
        std::fflush(stdout);
      };
    }

    // trace_out: dump the first scenario's pre-ordering injection schedule
    // as a payload-carrying PacketTrace CSV. Replaying it (generators=replay
    // trace=FILE on the same mesh/format/slots) reproduces that scenario's
    // per-link BT and energy byte for byte.
    const std::string trace_out = opts.get_string("trace_out", "");
    if (!trace_out.empty()) {
      const sim::ScenarioSpec& first = scenarios.front();
      if (first.generator == sim::GeneratorKind::kModel)
        throw std::invalid_argument(
            "trace_out records synthetic/placement schedules, not model "
            "workloads (model traffic is reactive)");
      sim::record_schedule(first).dump_csv(trace_out);
      std::printf("wrote injection-schedule trace of '%s' to %s\n",
                  first.name.c_str(), trace_out.c_str());
    }

    const sim::CampaignResult result = sim::run_campaign(camp, runner);
    std::fputs(sim::render_table(result).c_str(), stdout);

    const std::string csv_path = opts.get_string("csv", "");
    if (!csv_path.empty()) {
      sim::write_csv_report(csv_path, camp, result);
      std::printf("wrote CSV report to %s\n", csv_path.c_str());
    }
    const std::string json_path = opts.get_string("json", "");
    if (!json_path.empty()) {
      sim::write_json_report(json_path, camp, result);
      std::printf("wrote JSON report to %s\n", json_path.c_str());
    }
    const std::string heatmap_path = opts.get_string("heatmap", "");
    if (!heatmap_path.empty()) {
      const std::size_t rows =
          sim::write_link_heatmap_csv(heatmap_path, camp, result);
      std::printf("wrote per-link heatmap CSV to %s (%zu link rows)\n",
                  heatmap_path.c_str(), rows);
    }
    const std::string profile_path = opts.get_string("profile", "");
    if (!profile_path.empty()) {
      sim::write_profile_csv(profile_path, camp, result);
      std::printf("wrote step-loop profile CSV to %s\n", profile_path.c_str());
    }

    std::size_t failed = 0;
    for (const auto& row : result.rows)
      if (!row.error.empty()) ++failed;
    if (failed > 0) {
      std::printf("%zu of %zu scenarios failed\n", failed, result.rows.size());
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nocbt_campaign: %s\n", e.what());
    return 2;
  }
}
