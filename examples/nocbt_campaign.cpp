// nocbt_campaign: declarative scenario sweeps from the command line.
//
// Expands a parameter grid (generators x formats x modes x meshes x
// windows x replicates) into scenarios, runs them on a thread pool (one
// network per worker, deterministic per-scenario seeds), and reports an
// ASCII table plus optional CSV / JSON files.
//
//   $ ./nocbt_campaign generators=uniform,hotspot formats=float32,fixed8
//       modes=O0,O1,O2 meshes=4x4,8x8 windows=64 threads=4 json=report.json
//   (one command line; wrapped here for readability)
//
// `modes=` accepts every registered ordering strategy in addition to the
// paper's O0/O1/O2: `chain`, `hdchain`, `bucket`, `hybrid`, `twoflit`
// (each applied with affiliated pairing — see src/ordering/strategy.h and
// the README's "Ordering strategies" table).
//
// Every key can also come from a `config=FILE` key=value file (one pair
// per line, '#' comments); explicit command-line arguments win. Use
// `describe=1` to print the expanded scenario list without running it.
//
// Energy reporting (§V-C units): `energy_pj=` selects the pJ/transition
// point ("innovus" = 0.173, "banerjee" = 0.532, or a number) and
// `freq_mhz=` the link clock; every report then carries measured link
// energy (pJ) and average power (mW) per scenario. `heatmap=FILE` writes
// a per-link CSV (link id, kind, src->dst, flits, BT, energy) for
// hotspot analysis.
//
// Placement workloads (`generators=placement`): `model=` picks a zoo
// model (lenet | darknet | resnet | mobile | attention), `placement=` a
// placement policy (rowmajor | snake | nearmc), `tiles_per_layer=` the PE
// shards per layer. `trace_out=FILE` dumps the first scenario's
// pre-ordering injection schedule as a payload-carrying PacketTrace CSV;
// replaying it (`generators=replay trace=FILE`) on the same mesh, format
// and slots reproduces that scenario's BT/energy byte for byte.
//
// `engine=auto|active|fullscan|analytical` selects the simulation
// backend. "auto" (the default) evaluates each synthetic schedule with
// the zero-load analytical engine and keeps that result when it is proven
// exact (congestion-free), falling back to the active-set cycle engine
// otherwise; forcing "analytical" fails contended scenarios loudly, and
// the full-scan reference produces identical numbers to active, only
// slower — useful for differential runs. `profile=FILE` writes the
// step-loop profile CSV (actual engine run, wall-clock per variant,
// cycles stepped vs. idle-skipped, component steps run vs. skipped, skip
// ratio).
//
// Campaign service (see README "Campaign service"): `cache_dir=DIR` keeps
// a content-addressed store of completed scenario rows — a rerun (or a
// nocbt_optimize search over the same scenarios) replays hits instead of
// re-simulating. `resume=FILE` checkpoints every completed row to an
// append-only journal; rerunning the same command after a kill skips the
// journaled rows, and pointing resume= at a journal from a *different*
// spec fails loudly. `shard=i/N` runs the i-th of N deterministic
// expansion slices (give each shard its own resume= file);
// `merge=FILE1,FILE2,...` reassembles shard journals into the full
// reports — byte-identical to a serial run — without simulating anything.

#include <cstdio>
#include <exception>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.h"
#include "sim/campaign.h"
#include "sim/campaign_executor.h"
#include "sim/campaign_report.h"
#include "sim/campaign_config.h"
#include "sim/run_journal.h"
#include "sim/traffic_gen.h"

using namespace nocbt;

namespace {

/// get_int with a range gate, so a negative or absurd value fails with a
/// clear message instead of wrapping through an unsigned cast.
std::int64_t get_bounded(const Options& opts, const std::string& key,
                         std::int64_t fallback, std::int64_t lo,
                         std::int64_t hi) {
  const std::int64_t v = opts.get_int(key, fallback);
  if (v < lo || v > hi)
    throw std::invalid_argument("option '" + key + "' must be in [" +
                                std::to_string(lo) + ", " +
                                std::to_string(hi) + "], got " +
                                std::to_string(v));
  return v;
}

/// This binary's runner-only keys — how the sweep is executed and reported.
/// The campaign-shaping keys live in sim::campaign_option_keys(), shared
/// with nocbt_optimize and the tests so every front-end interprets them
/// identically.
const std::set<std::string> kRunnerKeys{
    "config", "threads", "progress", "describe",  "csv",
    "json",   "heatmap", "profile",  "trace_out", "merge"};

}  // namespace

int main(int argc, char** argv) {
  try {
    Options opts = Options::parse(argc, argv);
    if (opts.has("config")) {
      opts.merge_defaults(Options::parse_file(opts.get_string("config", "")));
    }
    std::set<std::string> extra = kRunnerKeys;
    extra.insert(sim::campaign_service_option_keys().begin(),
                 sim::campaign_service_option_keys().end());
    sim::check_campaign_keys(opts, extra);

    const sim::CampaignSpec camp = sim::campaign_from_options(opts);
    const auto scenarios = camp.expand();
    if (scenarios.empty())
      throw std::invalid_argument(
          "campaign expanded to 0 scenarios — check for an empty grid list "
          "(generators/formats/modes/meshes/windows) or replicates=0");
    std::printf("campaign '%s': %zu scenarios (root seed %llu)\n",
                camp.name.c_str(), scenarios.size(),
                static_cast<unsigned long long>(camp.root_seed));

    if (opts.get_bool("describe", false)) {
      for (const auto& s : scenarios)
        std::printf("  %-32s seed=%llu packets=%u rate=%.3f\n",
                    s.name.c_str(), static_cast<unsigned long long>(s.seed),
                    s.packets, s.injection_rate);
      return 0;
    }

    sim::RunnerConfig runner;
    runner.threads =
        static_cast<unsigned>(get_bounded(opts, "threads", 4, 1, 1024));
    runner.exec = sim::execution_from_options(opts);
    if (opts.get_bool("progress", true)) {
      runner.on_result = [](const sim::ScenarioResult& row, std::size_t done,
                            std::size_t total) {
        std::printf("  [%zu/%zu] %-32s %s\n", done, total,
                    row.spec.name.c_str(),
                    row.error.empty() ? "ok" : row.error.c_str());
        std::fflush(stdout);
      };
    }

    // trace_out: dump the first scenario's pre-ordering injection schedule
    // as a payload-carrying PacketTrace CSV. Replaying it (generators=replay
    // trace=FILE on the same mesh/format/slots) reproduces that scenario's
    // per-link BT and energy byte for byte.
    const std::string trace_out = opts.get_string("trace_out", "");
    if (!trace_out.empty()) {
      const sim::ScenarioSpec& first = scenarios.front();
      if (first.generator == sim::GeneratorKind::kModel)
        throw std::invalid_argument(
            "trace_out records synthetic/placement schedules, not model "
            "workloads (model traffic is reactive)");
      sim::record_schedule(first).dump_csv(trace_out);
      std::printf("wrote injection-schedule trace of '%s' to %s\n",
                  first.name.c_str(), trace_out.c_str());
    }

    // merge=: reassemble shard journals into the full reports instead of
    // running anything — the reports are byte-identical to a serial run's.
    const std::string merge = opts.get_string("merge", "");
    const sim::CampaignResult result =
        merge.empty() ? sim::run_campaign(camp, runner)
                      : sim::merge_campaign(camp, split_csv_list(merge));
    for (const std::string& warning : result.stats.warnings)
      std::fprintf(stderr, "nocbt_campaign: warning: %s\n", warning.c_str());
    if (!merge.empty()) {
      std::printf("merged %zu journal(s): %zu rows recovered\n",
                  split_csv_list(merge).size(), result.rows.size());
    } else if (!runner.exec.cache_dir.empty() ||
               !runner.exec.journal_path.empty() ||
               runner.exec.shard.count > 1) {
      std::printf(
          "shard %s: %zu of %zu scenarios assigned — %zu simulated, %zu "
          "cache hits, %zu journal hits\n",
          to_string(runner.exec.shard).c_str(), result.stats.assigned,
          result.stats.grid_total, result.stats.simulated,
          result.stats.cache_hits, result.stats.journal_hits);
    }
    std::fputs(sim::render_table(result).c_str(), stdout);

    const std::string csv_path = opts.get_string("csv", "");
    if (!csv_path.empty()) {
      sim::write_csv_report(csv_path, camp, result);
      std::printf("wrote CSV report to %s\n", csv_path.c_str());
    }
    const std::string json_path = opts.get_string("json", "");
    if (!json_path.empty()) {
      sim::write_json_report(json_path, camp, result);
      std::printf("wrote JSON report to %s\n", json_path.c_str());
    }
    const std::string heatmap_path = opts.get_string("heatmap", "");
    if (!heatmap_path.empty()) {
      const std::size_t rows =
          sim::write_link_heatmap_csv(heatmap_path, camp, result);
      std::printf("wrote per-link heatmap CSV to %s (%zu link rows)\n",
                  heatmap_path.c_str(), rows);
    }
    const std::string profile_path = opts.get_string("profile", "");
    if (!profile_path.empty()) {
      sim::write_profile_csv(profile_path, camp, result);
      std::printf("wrote step-loop profile CSV to %s\n", profile_path.c_str());
    }

    std::size_t failed = 0;
    for (const auto& row : result.rows)
      if (!row.error.empty()) ++failed;
    if (failed > 0) {
      std::printf("%zu of %zu scenarios failed\n", failed, result.rows.size());
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nocbt_campaign: %s\n", e.what());
    return 2;
  }
}
