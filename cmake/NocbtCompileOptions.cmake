# Shared compile/link options for every nocbt target.
#
# nocbt_warnings is an INTERFACE target linked PRIVATE by all libraries and
# executables: warnings stay a build-tree policy and are never exported to
# consumers. The optional NOCBT_SANITIZE flags ride on the same target so
# object files and final links always agree on instrumentation.

add_library(nocbt_warnings INTERFACE)

if(MSVC)
  target_compile_options(nocbt_warnings INTERFACE /W4)
else()
  target_compile_options(nocbt_warnings INTERFACE -Wall -Wextra)
endif()

if(NOCBT_SANITIZE)
  if(MSVC)
    message(FATAL_ERROR "NOCBT_SANITIZE is only supported with GCC/Clang")
  endif()
  message(STATUS "Sanitizers enabled: ${NOCBT_SANITIZE}")
  target_compile_options(nocbt_warnings INTERFACE
    -fsanitize=${NOCBT_SANITIZE} -fno-omit-frame-pointer)
  target_link_options(nocbt_warnings INTERFACE -fsanitize=${NOCBT_SANITIZE})
endif()
